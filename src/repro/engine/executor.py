"""Physical execution of cache-aware logical plans.

Two execution pipelines share this module:

* the **batched vectorized pipeline** (default, ``config.vectorized_execution``)
  moves :class:`~repro.engine.batch.RecordBatch` chunks from the scans up
  through select/project/join, evaluating predicates as NumPy masks and
  touching record granularity only where ReCache's semantics demand it
  (admission sampling, record-level dedup);
* the **row interpreter** walks the same plans one Python dict at a time — it
  is the parity baseline the batch-pipeline bench and the parity test suite
  compare against, and remains available via
  ``config.vectorized_execution=False``.

Both pipelines produce identical results, reports and cache behaviour.  The
most involved piece is the materializer, which reproduces ReCache's reactive
admission behaviour (Section 5.2): it caches the first records of a scan both
eagerly and lazily while measuring the time spent on caching work, extrapolates
the caching overhead to the end of the file, and downgrades to lazy
(offsets-only) caching when the projected overhead exceeds the configured
threshold.  The batched materializer samples those admission costs per batch
instead of per record.  Cache scans measure the data/compute costs that feed
the layout selector, and lazy caches are upgraded to eager ones on their first
reuse.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

import numpy as np

# recheck-lint: check-no-swallow — except blocks in this module must re-raise,
# wrap in a typed error, or route through an audited containment sink.
from repro.core.admission import AdmissionDecision, AdmissionSample
from repro.core.cache_entry import LayoutObservation
from repro.core.cache_manager import ReCache
from repro.core.config import ReCacheConfig
from repro.core.errors import CorruptedCacheError, DeadlineExceeded, WorkerCrashed
from repro.core.sharded_cache import ShardedReCache
from repro.engine.algebra import (
    AggregateNode,
    CacheScanNode,
    JoinNode,
    MaterializeNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SelectNode,
)
from repro.engine.batch import RecordBatch, approx_record_bytes, rows_from_batches
from repro.engine.calibration import split_scan_cost
from repro.engine.compiler import (
    compile_aggregates,
    compile_batch_predicate,
    compile_predicate,
)
from repro.engine.operators import (
    aggregate_batches,
    aggregate_rows,
    filter_batches,
    hash_join,
    hash_join_batches,
    project_batches,
    project_rows,
)
from repro.engine.procpool import ScanTask
from repro.engine.types import ColumnarResult, flatten_record
from repro.faults import runtime as faults
from repro.formats.datafile import DataSource, DataSourceCatalog
from repro.layouts import build_layout
from repro.utils.timing import SampledTimer


@dataclass
class QueryReport:
    """Per-query execution report returned by the engine."""

    #: the query output: a list of row dictionaries by default, or a
    #: :class:`~repro.engine.types.ColumnarResult` when the query ran with
    #: ``result_format="columnar"`` (same rows, columnar representation).
    results: "list[dict] | ColumnarResult" = field(default_factory=list)
    rows_returned: int = 0
    total_time: float = 0.0
    operator_time: float = 0.0
    caching_time: float = 0.0
    cache_scan_time: float = 0.0
    lookup_time: float = 0.0
    exact_hits: int = 0
    subsumption_hits: int = 0
    misses: int = 0
    layout_switches: int = 0
    lazy_upgrades: int = 0
    admissions: dict = field(default_factory=lambda: {"eager": 0, "lazy": 0})
    #: time spent between submission to the serving tier and execution start
    #: (backpressure blocking plus queue residency); 0 outside a server.
    #: Always computed from coordinator-side clocks — worker processes
    #: report durations only, never timestamps.
    queue_wait_time: float = 0.0
    #: the server's pending-query depth observed when this query was enqueued
    queue_depth: int = 0
    #: 1 when this request was served from another identical request's
    #: execution in the same submission batch (no engine work of its own)
    coalesced: int = 0
    #: wait accumulated by coalesced duplicates between their own enqueue and
    #: the primary's resolution.  Kept out of ``queue_wait_time`` so N
    #: duplicates of one execution cannot report N full queue waits (the
    #: accounting bug that made batched-bench wait dwarf wall time).
    coalesced_wait_time: float = 0.0
    #: 1 when the cache-hit scan ran on the worker-process pool
    #: (``execution_mode="processes"``) instead of in-process
    offloaded: int = 0
    #: transparent re-executions after a transient scan fault (the report of
    #: the attempt that finally succeeded carries the count)
    retries: int = 0
    #: cache scans that fell back to a raw-source scan after their cached
    #: layout raised mid-scan (the result stays correct, just slower)
    degraded_scans: int = 0
    #: poisoned cache entries this query invalidated (evicted under the
    #: shard lock with their budget share released)
    quarantined_entries: int = 0
    #: 1 when the serving tier rejected this query under eviction pressure
    #: (set by whoever converts the typed QueryRejected into a report)
    shed: int = 0
    #: 1 when the query's deadline elapsed before a result was produced
    deadline_exceeded: int = 0
    label: str = ""

    @property
    def cache_hits(self) -> int:
        return self.exact_hits + self.subsumption_hits

    @property
    def caching_overhead(self) -> float:
        """Fraction of the query's time spent on caching work (Figure 12)."""
        if self.total_time <= 0.0:
            return 0.0
        return self.caching_time / self.total_time

    def as_dict(self) -> dict:
        return {
            "rows_returned": self.rows_returned,
            "total_time": self.total_time,
            "operator_time": self.operator_time,
            "caching_time": self.caching_time,
            "cache_scan_time": self.cache_scan_time,
            "lookup_time": self.lookup_time,
            "exact_hits": self.exact_hits,
            "subsumption_hits": self.subsumption_hits,
            "misses": self.misses,
            "caching_overhead": self.caching_overhead,
            "layout_switches": self.layout_switches,
            "queue_wait_time": self.queue_wait_time,
            "queue_depth": self.queue_depth,
            "coalesced": self.coalesced,
            "coalesced_wait_time": self.coalesced_wait_time,
            "offloaded": self.offloaded,
            "retries": self.retries,
            "degraded_scans": self.degraded_scans,
            "quarantined_entries": self.quarantined_entries,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
        }


@dataclass
class ExecutionContext:
    """Everything the executor needs while interpreting one plan.

    One context is created per query execution (the engine never shares a
    context between threads), so the report and timing fields need no locking;
    only the cache manager behind ``recache`` is shared.
    """

    catalog: DataSourceCatalog
    recache: ReCache | ShardedReCache | None
    config: ReCacheConfig
    report: QueryReport
    sequence: int
    query_started: float
    #: absolute ``time.perf_counter()`` instant after which execution must
    #: abort with :class:`DeadlineExceeded`; ``None`` disables the checks
    deadline_at: float | None = None


def _check_deadline(ctx: ExecutionContext) -> None:
    """Raise :class:`DeadlineExceeded` once the context's deadline passes.

    Called at operator boundaries and periodically inside scan loops; cost
    is one comparison when no deadline is set.
    """
    deadline_at = ctx.deadline_at
    if deadline_at is not None and time.perf_counter() > deadline_at:
        ctx.report.deadline_exceeded = 1
        raise DeadlineExceeded(
            f"query exceeded its deadline mid-execution (label={ctx.report.label!r})"
        )


def execute_plan(plan: PlanNode, ctx: ExecutionContext) -> list[dict]:
    """Execute a logical plan, returning its output rows.

    Dispatches between the batched vectorized pipeline and the row
    interpreter according to ``ctx.config.vectorized_execution``.
    """
    if ctx.config.vectorized_execution:
        return _execute_plan_batched(plan, ctx)
    return _execute_plan_rows(plan, ctx)


def execute_plan_columnar(plan: PlanNode, ctx: ExecutionContext) -> ColumnarResult:
    """Execute a logical plan, returning its output as a :class:`ColumnarResult`.

    The ``result_format="columnar"`` exit: under the batched pipeline the
    operator tree's :class:`RecordBatch` stream is handed to the caller as-is
    — no per-row dictionary assembly happens at all.  Aggregate roots (a
    handful of group rows) and the row interpreter wrap their row output
    instead, so the knob is valid under either pipeline.  Execution, report
    counters and cache accounting are byte-identical to the rows exit; only
    the output representation differs, and ``ColumnarResult.to_rows()``
    reproduces the rows exit bit for bit.
    """
    if not ctx.config.vectorized_execution:
        return ColumnarResult.from_rows(_execute_plan_rows(plan, ctx))
    if isinstance(plan, AggregateNode):
        return ColumnarResult.from_rows(_execute_plan_batched(plan, ctx))
    return ColumnarResult(_execute_batches(plan, ctx))


# ===========================================================================
# Row-at-a-time interpreter (parity baseline)
# ===========================================================================
def _execute_plan_rows(plan: PlanNode, ctx: ExecutionContext) -> list[dict]:
    """Interpret a logical plan bottom-up, one row dictionary at a time."""
    if isinstance(plan, AggregateNode):
        rows = _execute_plan_rows(plan.child, ctx)
        aggregates = compile_aggregates(plan.aggregates)
        return aggregate_rows(rows, aggregates, plan.group_by)
    if isinstance(plan, JoinNode):
        left = _execute_plan_rows(plan.left, ctx)
        right = _execute_plan_rows(plan.right, ctx)
        started = time.perf_counter()
        joined = hash_join(left, right, plan.left_key, plan.right_key)
        ctx.report.operator_time += time.perf_counter() - started
        return joined
    if isinstance(plan, ProjectNode):
        return project_rows(_execute_plan_rows(plan.child, ctx), plan.fields)
    if isinstance(plan, CacheScanNode):
        return _execute_cache_scan(plan, ctx)
    if isinstance(plan, MaterializeNode):
        return _execute_materialize(plan, ctx)
    if isinstance(plan, SelectNode):
        return _execute_select(plan, ctx)
    if isinstance(plan, ScanNode):
        return _scan_source_rows(ctx.catalog.get(plan.source), plan.fields)
    raise TypeError(f"cannot execute plan node of type {type(plan).__name__}")


# ---------------------------------------------------------------------------
# Raw scans without caching
# ---------------------------------------------------------------------------
def _scan_source_rows(source: DataSource, fields: list[str]) -> list[dict]:
    return list(source.scan(fields or None))


def _execute_select(node: SelectNode, ctx: ExecutionContext) -> list[dict]:
    """Select over a raw scan with no materializer (caching disabled)."""
    if not isinstance(node.child, ScanNode):
        rows = _execute_plan_rows(node.child, ctx)
        predicate = compile_predicate(node.predicate)
        return [row for row in rows if predicate(row)]
    source = ctx.catalog.get(node.child.source)
    fields = node.child.fields
    predicate = compile_predicate(node.predicate)
    dedupe = _record_level_semantics(source, fields)
    started = time.perf_counter()
    rows: list[dict] = []
    for group_index, (_, record_rows, _) in enumerate(_iter_record_groups(source, fields)):
        if (group_index & 0xFF) == 0:
            _check_deadline(ctx)
        satisfying = [row for row in record_rows if predicate(row)]
        if not satisfying:
            continue
        if dedupe:
            rows.append(satisfying[0])
        else:
            rows.extend(satisfying)
    ctx.report.operator_time += time.perf_counter() - started
    return rows


def _record_level_semantics(source: DataSource, fields: list[str]) -> bool:
    """True when a query over ``fields`` aggregates once per record.

    Queries that reference no nested attribute follow the nested algebra's
    record-level semantics; flattening duplicates must not be double counted
    for them, regardless of which layout serves the data.
    """
    if not source.is_nested():
        return False
    schema = source.schema
    known = set(schema.leaf_paths())
    return not any(schema.is_nested_path(path) for path in fields if path in known)


# ---------------------------------------------------------------------------
# Cache reuse
# ---------------------------------------------------------------------------
def _execute_cache_scan(node: CacheScanNode, ctx: ExecutionContext) -> list[dict]:
    entry = node.entry
    recache = ctx.recache
    assert recache is not None
    ctx.report.lookup_time += node.lookup_time
    if node.exact:
        ctx.report.exact_hits += 1
    else:
        ctx.report.subsumption_hits += 1

    # Snapshot the entry's mutable state once: a concurrent lazy upgrade or
    # layout switch writes the new layout before clearing the offsets, so a
    # non-None offsets list is always usable and a None one implies the layout
    # reference is already valid.  Scans then run entirely on local references,
    # outside any cache lock.
    offsets = entry.lazy_offsets
    if offsets is not None:
        try:
            return _execute_lazy_cache_scan(node, ctx, offsets)
        except DeadlineExceeded:
            raise
        except Exception:
            _quarantine_entry(node, ctx)
            return _degraded_raw_rows(node, ctx)

    layout = entry.layout
    assert layout is not None
    wanted = node.fields
    schema = layout.schema
    accessed_nested = any(
        schema.is_nested_path(path) for path in wanted if path in set(schema.leaf_paths())
    )
    # Queries that touch no nested attribute follow record-level (nested
    # algebra) semantics: parent attributes must not be double counted just
    # because the cache stores the flattened view.
    dedupe = bool(schema.nested_paths()) and not accessed_nested

    started = time.perf_counter()
    layout_name = layout.layout_name
    try:
        ranges = _vectorizable_ranges(node.residual_predicate, layout, wanted)
        if ranges is not None:
            # The cached data is binary and columnar: evaluate the residual range
            # predicate vectorized and materialize only the matching rows.
            if layout_name == "parquet":
                rows = list(layout.scan_range_filtered(ranges, fields=wanted))
                scanned_rows = layout.record_count
            else:
                rows = list(
                    layout.scan_range_filtered(ranges, fields=wanted, dedupe_records=dedupe)
                )
                scanned_rows = layout.flattened_row_count
        else:
            predicate = compile_predicate(node.residual_predicate)
            scanned_rows = 0
            rows = []
            scan_kwargs = {}
            if dedupe and layout_name in ("columnar", "row"):
                scan_kwargs["dedupe_records"] = True
            for row in layout.scan(fields=wanted, **scan_kwargs):
                scanned_rows += 1
                if predicate(row):
                    rows.append(row)
            if layout_name in ("columnar", "row") and dedupe:
                # The dedup scan still walks every flattened row internally.
                scanned_rows = layout.flattened_row_count
    except DeadlineExceeded:
        raise
    except Exception:
        ctx.report.cache_scan_time += time.perf_counter() - started
        _quarantine_entry(node, ctx)
        return _degraded_raw_rows(node, ctx)
    scan_time = time.perf_counter() - started
    ctx.report.cache_scan_time += scan_time

    _record_cache_scan_reuse(
        node, ctx, layout_name, scan_time, scanned_rows, wanted, accessed_nested
    )
    return rows


def _record_cache_scan_reuse(
    node: CacheScanNode,
    ctx: ExecutionContext,
    layout_name: str,
    scan_time: float,
    scanned_rows: int,
    wanted: list[str],
    accessed_nested: bool,
) -> None:
    """Feed one cache-scan measurement to the layout selector and policies."""
    recache = ctx.recache
    assert recache is not None
    data_cost, compute_cost = split_scan_cost(scan_time, scanned_rows * max(1, len(wanted)))
    observation = LayoutObservation(
        query_index=ctx.sequence,
        layout_name=layout_name,
        data_cost=data_cost,
        compute_cost=compute_cost,
        rows_accessed=scanned_rows,
        columns_accessed=max(1, len(wanted)),
        accessed_nested=accessed_nested,
    )
    switched = recache.record_reuse(
        node.entry, scan_time=scan_time, lookup_time=node.lookup_time, observation=observation
    )
    if switched:
        ctx.report.layout_switches += 1


# ---------------------------------------------------------------------------
# Poisoned-entry containment
# ---------------------------------------------------------------------------
def _quarantine_entry(node: CacheScanNode, ctx: ExecutionContext) -> None:
    """Invalidate a cache entry whose scan raised (audited no-swallow sink).

    The entry is evicted under its shard lock with its budget reservation and
    occupancy released; the query then degrades to a raw-source scan instead
    of failing.  Racing queries that already hold the entry either finish
    their own scan or hit the same fault and find the entry already gone.
    """
    recache = ctx.recache
    if recache is not None and recache.quarantine(node.entry):
        ctx.report.quarantined_entries += 1


def _degraded_raw_rows(node: CacheScanNode, ctx: ExecutionContext) -> list[dict]:  # rowwise-fallback: degraded re-scan after quarantine trades throughput for containment
    """Serve a cache-scan node from the raw source after quarantining its entry.

    ``residual_predicate`` always carries the full table predicate (even on
    exact hits), so re-applying it over a fresh raw scan reproduces the cache
    scan's output bit for bit.
    """
    ctx.report.degraded_scans += 1
    source = ctx.catalog.get(node.entry.source)
    predicate = compile_predicate(node.residual_predicate)
    dedupe = _record_level_semantics(source, node.fields)
    started = time.perf_counter()
    rows: list[dict] = []
    for _, record_rows, _ in _iter_record_groups(source, node.fields):
        satisfying = [row for row in record_rows if predicate(row)]
        if not satisfying:
            continue
        rows.extend(satisfying[:1] if dedupe else satisfying)
    ctx.report.operator_time += time.perf_counter() - started
    return rows


def _degraded_raw_batches(node: CacheScanNode, ctx: ExecutionContext) -> list[RecordBatch]:  # rowwise-fallback: degraded re-scan after quarantine trades throughput for containment
    """Batched counterpart of :func:`_degraded_raw_rows` (same semantics)."""
    ctx.report.degraded_scans += 1
    source = ctx.catalog.get(node.entry.source)
    batch_predicate = compile_batch_predicate(node.residual_predicate)
    dedupe = _record_level_semantics(source, node.fields)
    started = time.perf_counter()
    output = filter_batches(
        source.scan_batches(node.fields, batch_size=ctx.config.batch_size),
        batch_predicate,
        dedupe_records=dedupe,
    )
    ctx.report.operator_time += time.perf_counter() - started
    return output


def _vectorizable_ranges(predicate, layout, wanted_fields) -> dict[str, tuple[float, float]] | None:
    """Closed ranges usable by the layouts' vectorized filter, or ``None``.

    The fast path applies when the residual predicate is a pure conjunction of
    numeric range constraints and the layout can filter/project all involved
    fields vectorized (for Parquet, nested numeric leaves qualify too as long
    as they form a single aligned repetition group — the mask then evaluates
    at entry granularity over the raw striped arrays).  Open/half-open bounds
    are widened to +/-inf, which is safe for closed-interval evaluation
    because the underlying predicates produced by the workload generators are
    inclusive.
    """
    from repro.engine.expressions import Comparison, RangePredicate, conjuncts, extract_ranges

    if not hasattr(layout, "scan_range_filtered"):
        return None
    parts = conjuncts(predicate)
    for part in parts:
        if not isinstance(part, (Comparison, RangePredicate)):
            return None
        # Every conjunct must convert into a closed interval on its own,
        # otherwise the vectorized filter would silently drop a constraint.
        part_ranges = extract_ranges(part)
        if len(part_ranges) != 1:
            return None
        interval = next(iter(part_ranges.values()))
        if not (interval.low_inclusive and interval.high_inclusive):
            return None
    intervals = extract_ranges(predicate)
    involved = set(wanted_fields) | set(intervals)
    if not layout.supports_range_filter(sorted(involved)):
        return None
    return {field: (interval.low, interval.high) for field, interval in intervals.items()}


# ---------------------------------------------------------------------------
# Process-pool offload (execution_mode="processes")
# ---------------------------------------------------------------------------
def try_offload_cache_scan(plan: PlanNode, ctx: ExecutionContext, pool, registry):
    """Serve an eligible cache-hit plan on the worker-process pool.

    Returns the result rows, or ``None`` when the plan is not offloadable —
    the caller then falls through to the ordinary in-process path, so the
    process pool is a pure fast path, never a correctness dependency.
    Eligible shapes are exactly ``CacheScanNode`` and
    ``AggregateNode(CacheScanNode)`` over an eager flat columnar entry whose
    residual predicate vectorizes to closed ranges: the worker then runs the
    same ``range_filtered_batch`` → ``aggregate_batches``/
    ``rows_from_batches`` pipeline the thread path runs, against columns
    mapped from shared memory.

    A :class:`WorkerCrashed` propagates (typed containment, same contract as
    the thread path's injected crashes); a corruption raised inside the
    worker quarantines the entry here — in the coordinator, where the cache
    locks live — and degrades to the in-process fallback.
    """
    recache = ctx.recache
    if recache is None or not ctx.config.vectorized_execution:
        return None
    if ctx.deadline_at is not None:
        # Deadline checks fire inside scan loops; a shipped task cannot be
        # interrupted mid-flight, so deadline queries stay in-process.
        return None
    if isinstance(plan, AggregateNode) and isinstance(plan.child, CacheScanNode):
        node = plan.child
        aggregates = tuple(plan.aggregates)
        group_by = tuple(plan.group_by)
    elif isinstance(plan, CacheScanNode):
        node = plan
        aggregates = ()
        group_by = ()
    else:
        return None
    entry = node.entry
    layout = entry.layout
    if entry.lazy_offsets is not None or layout is None:
        return None
    if layout.schema is not None and layout.schema.nested_paths():
        # Nested sources need record-level dedupe semantics the worker does
        # not implement (exports are flat-only anyway; this gate is cheaper
        # than attempting one).
        return None
    ranges = _vectorizable_ranges(node.residual_predicate, layout, node.fields)
    if ranges is None:
        return None
    try:
        export = registry.export_for(entry)
    except OSError:  # recheck-lint: allow(no-swallow) — export is opportunistic
        # /dev/shm exhaustion (or any segment-creation failure) must degrade
        # to the in-process path, not fail the query.
        return None
    if export is None or not set(node.fields) <= set(export.fields):
        return None
    if not recache.is_resident(entry):
        # Eviction raced the export: its segment is already retired, and
        # serving from it would read a dead generation.  Fall back.
        registry.retire(entry)
        return None
    plan_specs: tuple[str, ...] = ()
    fault_seed = 0
    active = faults.active_plan()
    if active is not None:
        plan_specs = tuple(spec.as_string() for spec in active.specs)
        fault_seed = active.seed
    task = ScanTask(
        export=export,
        ranges=tuple((name, low, high) for name, (low, high) in sorted(ranges.items())),
        fields=tuple(node.fields),
        aggregates=aggregates,
        group_by=group_by,
        fault_specs=plan_specs,
        fault_seed=fault_seed,
    )
    try:
        result = pool.execute(task)
    except WorkerCrashed:
        raise
    except CorruptedCacheError:
        _quarantine_entry(node, ctx)
        return None
    except Exception:  # recheck-lint: allow(no-swallow) — offload is opportunistic: any non-typed failure (stale segment name, pipe hiccup) falls back to the audited in-process path, which re-raises real faults itself
        return None
    report = ctx.report
    report.lookup_time += node.lookup_time
    if node.exact:
        report.exact_hits += 1
    else:
        report.subsumption_hits += 1
    report.cache_scan_time += result.scan_seconds
    report.operator_time += result.operator_seconds
    report.offloaded = 1
    _record_cache_scan_reuse(
        node,
        ctx,
        layout.layout_name,
        result.scan_seconds,
        result.scanned_rows,
        node.fields,
        accessed_nested=False,
    )
    return result.rows


def _execute_lazy_cache_scan(
    node: CacheScanNode, ctx: ExecutionContext, offsets: list[int]
) -> list[dict]:
    """Reuse a lazy cache: re-read the satisfying records via the positional map.

    ``offsets`` is the caller's snapshot of the entry's lazy offsets; the entry
    itself may be upgraded concurrently by another query, in which case
    :meth:`~repro.core.cache_manager.ReCache.upgrade_lazy` below declines the
    duplicate upgrade.
    """
    entry = node.entry
    recache = ctx.recache
    assert recache is not None
    source = ctx.catalog.get(entry.source)
    predicate = compile_predicate(node.residual_predicate)
    upgrade = (
        ctx.config.upgrade_lazy_on_reuse
        and not ctx.config.always_lazy
        and not entry.upgrade_blocked
    )
    # When the lazy entry is about to be upgraded, parse complete tuples so the
    # resulting eager cache can serve any later query over this source.
    wanted = None if upgrade else node.fields
    schema = source.schema
    accessed_nested = any(
        schema.is_nested_path(path) for path in node.fields if path in set(schema.leaf_paths())
    )
    dedupe = source.is_nested() and not accessed_nested

    started = time.perf_counter()
    rows_out: list[dict] = []
    cached_rows: list[dict] = []
    cached_counts: list[int] = []
    for record_rows in source.read_record_rows(offsets, wanted):
        satisfying = [row for row in record_rows if predicate(row)]
        if satisfying:
            rows_out.append(satisfying[0]) if dedupe else rows_out.extend(satisfying)
        if upgrade:
            cached_rows.extend(record_rows)
            cached_counts.append(len(record_rows))
    scan_time = time.perf_counter() - started
    ctx.report.cache_scan_time += scan_time

    if upgrade and entry.is_lazy:
        build_started = time.perf_counter()
        all_fields = source.flattened_schema.field_names()
        layout = build_layout(
            ctx.config.default_flat_layout if not source.is_nested() else "columnar",
            source.flattened_schema if not source.is_nested() else source.schema,
            all_fields,
            rows=cached_rows,
            record_row_counts=cached_counts if source.is_nested() else None,
        )
        build_time = time.perf_counter() - build_started
        ctx.report.caching_time += build_time
        if recache.upgrade_lazy(entry, layout, build_time):
            entry.fields = all_fields
            ctx.report.lazy_upgrades += 1

    recache.record_reuse(entry, scan_time=scan_time, lookup_time=node.lookup_time)
    return rows_out


# ---------------------------------------------------------------------------
# Materialization (cache miss path)
# ---------------------------------------------------------------------------
def _execute_materialize(node: MaterializeNode, ctx: ExecutionContext) -> list[dict]:
    source = ctx.catalog.get(node.source)
    recache = ctx.recache
    config = ctx.config
    predicate = compile_predicate(node.predicate)
    nested = source.is_nested()
    layout_name = config.default_nested_layout if nested else config.default_flat_layout
    ctx.report.misses += 1

    dedupe_output = _record_level_semantics(source, node.fields)

    if recache is None or not config.caching_enabled:
        started = time.perf_counter()
        rows = []
        for _, record_rows, _ in _iter_record_groups(source, node.fields):
            satisfying = [row for row in record_rows if predicate(row)]
            if not satisfying:
                continue
            rows.extend(satisfying[:1] if dedupe_output else satisfying)
        ctx.report.operator_time += time.perf_counter() - started
        return rows

    # The operator itself parses only the fields the query needs; *caching*
    # eagerly means additionally parsing/flattening the complete tuple of every
    # satisfying record, and that extra work is measured as caching time
    # (Section 5.1: ``c`` includes "the time spent parsing the cached fields of
    # each record").  The cached entry therefore exposes every leaf field and
    # can serve any later query over this source.
    cache_fields = source.flattened_schema.field_names()

    mode = _initial_admission_mode(ctx, source)
    sampling = mode is None
    sample_limit = config.admission_sample_records
    to1 = time.perf_counter() - ctx.query_started
    tc1 = ctx.report.caching_time

    caching_seconds = 0.0
    post_sample_timer = SampledTimer(sample_rate=config.timing_sample_rate)
    rows_out: list[dict] = []
    eager_rows: list[dict] = []
    eager_records: list[dict] = []
    eager_counts: list[int] = []
    lazy_offsets: list[int] = []
    record_index = -1
    bytes_seen = 0

    operator_started = time.perf_counter()
    for record_index, (record, rows, approx_bytes) in enumerate(
        _iter_record_groups(source, node.fields)
    ):
        # Admission only happens after the loop completes, so aborting on a
        # deadline mid-scan leaves no cache state or budget reservation behind.
        if (record_index & 0xFF) == 0:
            _check_deadline(ctx)
        bytes_seen += approx_bytes
        satisfying = [row for row in rows if predicate(row)]
        if satisfying:
            rows_out.extend(satisfying[:1] if dedupe_output else satisfying)
        if not satisfying and not sampling:
            continue

        exact_timing = sampling
        if exact_timing:
            cache_started = time.perf_counter()
        else:
            post_sample_timer.maybe_start()

        if satisfying:
            if mode == "lazy":
                lazy_offsets.append(record_index)
            else:
                # Eager (or still sampling): parse the complete tuple(s) of the
                # satisfying record into the cache buffers; the sampling phase
                # also tracks offsets so a later lazy decision can keep them.
                if sampling:
                    lazy_offsets.append(record_index)
                if nested and layout_name == "parquet":
                    eager_records.append(record)
                elif source.format == "json":
                    # Already parsed by json.loads; flattening yields the
                    # complete tuple(s) for the cache.
                    full_rows = flatten_record(record, source.schema)
                    eager_rows.extend(full_rows)
                    if nested:
                        eager_counts.append(len(full_rows))
                else:
                    eager_rows.append(source.plugin.parse_full(record))

        if exact_timing:
            caching_seconds += time.perf_counter() - cache_started
        else:
            post_sample_timer.maybe_stop()

        if sampling and record_index + 1 >= sample_limit:
            sampling = False
            mode, sample_overhead = _decide_admission(
                ctx,
                source,
                layout_name,
                cache_fields,
                nested,
                eager_rows,
                eager_records,
                eager_counts,
                caching_seconds,
                to1,
                tc1,
                record_index + 1,
                bytes_seen,
            )
            caching_seconds = sample_overhead
            if mode == "lazy":
                eager_rows, eager_records, eager_counts = [], [], []
            else:
                lazy_offsets = []

    elapsed = time.perf_counter() - operator_started
    caching_seconds += post_sample_timer.estimated_total

    # If the file ended before the sample completed, fall back to eager: the
    # whole (small) result is already buffered.
    if mode is None:
        mode = "eager"

    # -- build and admit the cache -------------------------------------------
    caching_seconds += _admit(
        ctx,
        node,
        source,
        mode,
        layout_name,
        cache_fields,
        nested,
        eager_rows,
        eager_records,
        eager_counts,
        lazy_offsets,
        elapsed,
        caching_seconds,
    )

    operator_seconds = max(0.0, elapsed - caching_seconds)
    ctx.report.operator_time += operator_seconds
    ctx.report.caching_time += caching_seconds
    return rows_out


def _initial_admission_mode(ctx: ExecutionContext, source: DataSource) -> str | None:
    """The admission mode fixed before scanning, or ``None`` to sample first."""
    config = ctx.config
    recache = ctx.recache
    assert recache is not None
    if config.always_lazy:
        return "lazy"
    if not config.adaptive_admission:
        return "eager"
    if recache.admission.should_skip_sampling(recache.has_hot_entries(source.name)):
        return "eager"
    return None


def _decide_admission(
    ctx: ExecutionContext,
    source: DataSource,
    layout_name: str,
    fields: list[str],
    nested: bool,
    eager_rows: list[dict],
    eager_records: list[dict],
    eager_counts: list[int],
    caching_seconds: float,
    to1: float,
    tc1: float,
    sample_records: int,
    bytes_seen: int,
) -> tuple[str, float]:
    """Build the sample cache, extrapolate the overhead, pick eager or lazy."""
    recache = ctx.recache
    assert recache is not None
    # Building the sample's eager cache is genuine caching work: include it in
    # the sampled caching time so the extrapolation sees the full cost.
    build_started = time.perf_counter()
    with contextlib.suppress(ValueError):  # empty sample: nothing to build
        if nested and layout_name == "parquet":
            build_layout(layout_name, source.schema, fields, records=eager_records)
        else:
            schema = source.schema if nested else source.flattened_schema
            build_layout(
                "columnar" if layout_name == "parquet" else layout_name,
                schema,
                fields,
                rows=eager_rows,
                record_row_counts=eager_counts or None,
            )
    caching_seconds += time.perf_counter() - build_started

    now = time.perf_counter() - ctx.query_started
    total_records = _estimate_total_records(source, sample_records, bytes_seen)
    sample = AdmissionSample(
        to1=to1,
        tc1=tc1,
        to2=now,
        tc2=ctx.report.caching_time + caching_seconds,
        sample_records=sample_records,
        total_records=total_records,
    )
    if ctx.config.admission_extrapolation:
        decision = recache.admission.decide(sample)
    else:
        decision = recache.admission.decide_naive(sample)
    mode = "lazy" if decision is AdmissionDecision.LAZY else "eager"
    return mode, caching_seconds


def _admit(
    ctx: ExecutionContext,
    node: MaterializeNode,
    source: DataSource,
    mode: str,
    layout_name: str,
    fields: list[str],
    nested: bool,
    eager_rows: list[dict],
    eager_records: list[dict],
    eager_counts: list[int],
    lazy_offsets: list[int],
    elapsed: float,
    caching_seconds: float,
) -> float:
    """Admit the materialized result into ReCache; returns extra caching time."""
    recache = ctx.recache
    assert recache is not None
    extra = 0.0
    if mode == "lazy":
        operator_seconds = max(0.0, elapsed - caching_seconds)
        entry = recache.admit_lazy(
            source=node.source,
            source_format=source.format,
            predicate=node.predicate,
            fields=fields,
            offsets=lazy_offsets,
            operator_time=operator_seconds,
            caching_time=caching_seconds,
        )
        if entry is not None:
            ctx.report.admissions["lazy"] += 1
        return extra

    build_started = time.perf_counter()
    try:
        if nested and layout_name == "parquet":
            layout = build_layout(layout_name, source.schema, fields, records=eager_records)
        else:
            schema = source.schema if nested else source.flattened_schema
            layout = build_layout(
                "columnar" if (nested and layout_name == "parquet") else layout_name,
                schema,
                fields,
                rows=eager_rows,
                record_row_counts=eager_counts or None,
            )
    except ValueError:
        # A degenerate result (empty source, zero satisfying records, or
        # inconsistent buffered rows) cannot be materialized into a layout.
        # The sampling path guards its trial build the same way; skip the
        # admission cleanly instead of failing the whole query.
        recache.note_skipped_admission(node.source, node.predicate)
        return time.perf_counter() - build_started
    extra = time.perf_counter() - build_started
    operator_seconds = max(0.0, elapsed - caching_seconds - extra)
    entry = recache.admit_eager(
        source=node.source,
        source_format=source.format,
        predicate=node.predicate,
        fields=fields,
        layout=layout,
        operator_time=operator_seconds,
        caching_time=caching_seconds + extra,
    )
    if entry is not None:
        ctx.report.admissions["eager"] += 1
    return extra


def _estimate_total_records(source: DataSource, sample_records: int, bytes_seen: int) -> int:
    """Estimate the file's record count from the bytes consumed by the sample."""
    if source.plugin.positional_map.complete:
        return source.plugin.positional_map.record_count
    if bytes_seen <= 0:
        return sample_records
    try:
        file_size = source.file_size()
    except OSError:  # recheck-lint: allow(no-swallow) — estimate, not containment
        return sample_records
    per_record = bytes_seen / sample_records
    return max(sample_records, int(file_size / max(1.0, per_record)))


def _iter_record_groups(source: DataSource, fields: list[str]):
    """Yield ``(record, flattened_rows, approx_bytes)`` per raw record.

    The record granularity is what admission sampling and lazy offsets operate
    on: one CSV line or one JSON object per record.  ``record`` carries what a
    materializer needs to build the complete cached tuple later: the parsed
    JSON object for nested sources, the raw text line for CSV sources.  The
    ``flattened_rows`` are restricted to ``fields`` (what the query itself
    needs for filtering and aggregation).
    """
    wanted = set(fields)
    if source.format == "json":
        for record in source.scan_records():
            rows = [
                {key: row.get(key) for key in wanted}
                for row in flatten_record(record, source.schema)
            ]
            approx = approx_record_bytes(record)
            yield record, rows, approx
    else:
        for line, row in source.plugin.scan_with_lines(fields or None):
            yield line, [row], max(16, len(line))


# ===========================================================================
# Batched vectorized pipeline
# ===========================================================================
def _execute_plan_batched(plan: PlanNode, ctx: ExecutionContext) -> list[dict]:
    """Execute a plan over record batches, materializing rows only at the top."""
    if isinstance(plan, AggregateNode):
        batches = _execute_batches(plan.child, ctx)
        aggregates = compile_aggregates(plan.aggregates)
        return aggregate_batches(batches, aggregates, plan.group_by)
    return rows_from_batches(_execute_batches(plan, ctx))  # rowwise-fallback: rows result format materializes Python rows once at the query boundary


def _execute_batches(plan: PlanNode, ctx: ExecutionContext) -> list[RecordBatch]:
    """Evaluate a plan subtree, returning its output as record batches."""
    if isinstance(plan, JoinNode):
        left = _execute_batches(plan.left, ctx)
        right = _execute_batches(plan.right, ctx)
        started = time.perf_counter()
        joined = hash_join_batches(left, right, plan.left_key, plan.right_key)
        ctx.report.operator_time += time.perf_counter() - started
        return joined
    if isinstance(plan, ProjectNode):
        return project_batches(_execute_batches(plan.child, ctx), plan.fields)
    if isinstance(plan, CacheScanNode):
        return _execute_cache_scan_batched(plan, ctx)
    if isinstance(plan, MaterializeNode):
        return _execute_materialize_batched(plan, ctx)
    if isinstance(plan, SelectNode):
        return _execute_select_batched(plan, ctx)
    if isinstance(plan, ScanNode):
        source = ctx.catalog.get(plan.source)
        return list(source.scan_batches(plan.fields or None, batch_size=ctx.config.batch_size))
    if isinstance(plan, AggregateNode):
        # An aggregate below the plan root (not produced by the optimizer, but
        # legal plan algebra): materialize its rows into a single batch.
        rows = _execute_plan_batched(plan, ctx)
        return [RecordBatch.from_rows(rows)] if rows else []
    raise TypeError(f"cannot execute plan node of type {type(plan).__name__}")


def _execute_select_batched(node: SelectNode, ctx: ExecutionContext) -> list[RecordBatch]:
    """Select over a raw scan with no materializer (caching disabled)."""
    batch_predicate = compile_batch_predicate(node.predicate)
    if not isinstance(node.child, ScanNode):
        return filter_batches(_execute_batches(node.child, ctx), batch_predicate)
    source = ctx.catalog.get(node.child.source)
    fields = node.child.fields
    dedupe = _record_level_semantics(source, fields)
    started = time.perf_counter()
    output = filter_batches(
        source.scan_batches(fields, batch_size=ctx.config.batch_size),
        batch_predicate,
        dedupe_records=dedupe,
    )
    ctx.report.operator_time += time.perf_counter() - started
    return output


def _execute_cache_scan_batched(node: CacheScanNode, ctx: ExecutionContext) -> list[RecordBatch]:
    entry = node.entry
    recache = ctx.recache
    assert recache is not None
    ctx.report.lookup_time += node.lookup_time
    if node.exact:
        ctx.report.exact_hits += 1
    else:
        ctx.report.subsumption_hits += 1

    # Same snapshot discipline as the interpreted path (see
    # :func:`_execute_cache_scan`): offsets/layout are read once and the scan
    # runs on local references outside any cache lock.
    offsets = entry.lazy_offsets
    if offsets is not None:
        # Lazy reuse re-reads the raw file through the positional map; its cost
        # is dominated by I/O and (on first reuse) the eager upgrade, so the
        # row implementation is shared and its output wrapped into one batch.
        try:
            rows = _execute_lazy_cache_scan(node, ctx, offsets)
        except DeadlineExceeded:
            raise
        except Exception:
            _quarantine_entry(node, ctx)
            return _degraded_raw_batches(node, ctx)
        return [RecordBatch.from_rows(rows)] if rows else []

    layout = entry.layout
    assert layout is not None
    wanted = node.fields
    schema = layout.schema
    known = set(schema.leaf_paths())
    accessed_nested = any(
        schema.is_nested_path(path) for path in wanted if path in known
    )
    dedupe = bool(schema.nested_paths()) and not accessed_nested

    started = time.perf_counter()
    layout_name = layout.layout_name
    try:
        batches, scanned_rows = _scan_layout_batches(node, ctx, layout, dedupe)
    except DeadlineExceeded:
        raise
    except Exception:
        ctx.report.cache_scan_time += time.perf_counter() - started
        _quarantine_entry(node, ctx)
        return _degraded_raw_batches(node, ctx)
    scan_time = time.perf_counter() - started
    ctx.report.cache_scan_time += scan_time

    _record_cache_scan_reuse(
        node, ctx, layout_name, scan_time, scanned_rows, wanted, accessed_nested
    )
    return batches


def _scan_layout_batches(
    node: CacheScanNode, ctx: ExecutionContext, layout, dedupe: bool
) -> tuple[list[RecordBatch], int]:
    """The batched layout-scan body of :func:`_execute_cache_scan_batched`.

    Factored out so the caller can wrap the whole scan in the poisoned-entry
    containment handler; returns ``(batches, scanned_rows)``.
    """
    wanted = node.fields
    layout_name = layout.layout_name
    batches: list[RecordBatch] = []
    ranges = _vectorizable_ranges(node.residual_predicate, layout, wanted)
    if ranges is not None:
        if hasattr(layout, "range_filtered_batch"):
            # Columnar/parquet fast path: one vectorized mask over the cached
            # column arrays, matching rows gathered straight into batch
            # columns.  Parquet's mask runs on the short per-record parent
            # stripes, so its scan cardinality is records, not flattened rows
            # (matching the interpreted path's accounting).
            batch = layout.range_filtered_batch(ranges, fields=wanted, dedupe_records=dedupe)
            if batch.row_count:
                batches.append(batch)
            if layout_name == "parquet":
                scanned_rows = layout.record_count
            else:
                scanned_rows = layout.flattened_row_count
        else:
            rows = list(layout.scan_range_filtered(ranges, fields=wanted))
            if rows:
                batches.append(RecordBatch.from_rows(rows, wanted))
            scanned_rows = layout.record_count
    else:
        batch_predicate = compile_batch_predicate(node.residual_predicate)
        scan_kwargs = {}
        if dedupe and layout_name in ("columnar", "row"):
            scan_kwargs["dedupe_records"] = True
        if layout_name in ("columnar", "parquet") and node.residual_predicate is not None:
            # Pre-build the layout's shared float64 views for the predicate's
            # columns so every batch mask slices one cached array instead of
            # re-converting its column lists (predicate fields are always part
            # of the scanned fields, so the columns exist; parquet only seeds
            # views on its flat fast path, where batch rows are records).
            scan_kwargs["numeric_fields"] = sorted(
                node.residual_predicate.referenced_fields()
            )
        scanned_rows = 0
        for batch in layout.scan_batches(
            fields=wanted, batch_size=ctx.config.batch_size, **scan_kwargs
        ):
            scanned_rows += batch.row_count
            indexes = np.nonzero(batch_predicate(batch))[0]
            if len(indexes) == batch.row_count:
                batches.append(batch)  # everything matched: no copy needed
            elif len(indexes):
                batches.append(batch.take(indexes))
        if layout_name in ("columnar", "row") and dedupe:
            # The dedup scan still walks every flattened row internally.
            scanned_rows = layout.flattened_row_count
    return batches, scanned_rows


def _execute_materialize_batched(node: MaterializeNode, ctx: ExecutionContext) -> list[RecordBatch]:
    """The materializer over record batches.

    Control flow mirrors :func:`_execute_materialize` record for record; the
    differences are that predicate evaluation is one mask per batch, output
    rows move as column slices, and caching work is timed per *batch* — exact
    timestamps around each batch's caching block while sampling, one
    :class:`SampledTimer` start/stop pair per batch afterwards.
    """
    source = ctx.catalog.get(node.source)
    recache = ctx.recache
    config = ctx.config
    batch_predicate = compile_batch_predicate(node.predicate)
    nested = source.is_nested()
    layout_name = config.default_nested_layout if nested else config.default_flat_layout
    ctx.report.misses += 1

    dedupe_output = _record_level_semantics(source, node.fields)
    batch_size = config.batch_size

    if recache is None or not config.caching_enabled:
        started = time.perf_counter()
        output = filter_batches(
            source.scan_batches(node.fields, batch_size=batch_size),
            batch_predicate,
            dedupe_records=dedupe_output,
        )
        ctx.report.operator_time += time.perf_counter() - started
        return output

    cache_fields = source.flattened_schema.field_names()

    mode = _initial_admission_mode(ctx, source)
    sampling = mode is None
    sample_limit = config.admission_sample_records
    to1 = time.perf_counter() - ctx.query_started
    tc1 = ctx.report.caching_time

    caching_seconds = 0.0
    # One timing decision covers a whole batch, so the per-batch sampling rate
    # is scaled by the batch size: the expected number of *records* whose
    # caching work gets timed matches the interpreted path, while the clock
    # overhead per record shrinks by ~batch_size (at the default 1024-record
    # batches and 1% record rate every batch is timed — two clock calls per
    # thousand records, far below the paper's monitoring-overhead concern).
    batch_timing_rate = min(1.0, config.timing_sample_rate * batch_size)
    post_sample_timer = SampledTimer(sample_rate=batch_timing_rate)
    output = []
    eager_rows: list[dict] = []
    eager_records: list[dict] = []
    eager_counts: list[int] = []
    lazy_offsets: list[int] = []
    records_seen = 0
    bytes_seen = 0

    operator_started = time.perf_counter()
    for scanned in source.scan_batches(node.fields, batch_size=batch_size, with_payload=True):
        # Admission only happens after the loop completes, so aborting on a
        # deadline mid-scan leaves no cache state or budget reservation behind.
        _check_deadline(ctx)
        # A batch that straddles the end of the admission sample is split so
        # the decision happens after exactly ``sample_limit`` records, as in
        # the record-at-a-time path.
        if sampling and 0 < sample_limit - records_seen < scanned.record_count:
            boundary = sample_limit - records_seen
            parts = [
                scanned.slice_records(0, boundary),
                scanned.slice_records(boundary, scanned.record_count),
            ]
        else:
            parts = [scanned]

        for batch in parts:
            bytes_seen += batch.total_record_bytes
            mask = batch_predicate(batch)
            out_indexes = (
                batch.first_true_per_record(mask) if dedupe_output else np.nonzero(mask)[0]
            )
            if len(out_indexes) == batch.row_count:
                # Everything matched: pass the columns through without a copy,
                # but shed the caching payload (raw lines / parsed records) so
                # the query output does not pin the whole file's records.
                output.append(RecordBatch(batch.columns, row_count=batch.row_count))
            elif len(out_indexes):
                output.append(batch.take(out_indexes))

            any_satisfying = bool(len(out_indexes))
            if any_satisfying or sampling:
                exact_timing = sampling
                if exact_timing:
                    cache_started = time.perf_counter()
                else:
                    post_sample_timer.maybe_start()

                if any_satisfying:
                    if batch.record_row_counts is None and not dedupe_output:
                        # Flat source: rows are records, and out_indexes is
                        # already the satisfying-row set.
                        satisfied = out_indexes
                    else:
                        satisfied = batch.records_with_true(mask)
                    if mode == "lazy":
                        lazy_offsets.extend(records_seen + int(r) for r in satisfied)
                    else:
                        if sampling:
                            lazy_offsets.extend(records_seen + int(r) for r in satisfied)
                        payload = batch.records
                        if nested and layout_name == "parquet":
                            eager_records.extend(payload[r] for r in satisfied)
                        elif source.format == "json":
                            for r in satisfied:
                                full_rows = flatten_record(payload[r], source.schema)
                                eager_rows.extend(full_rows)
                                if nested:
                                    eager_counts.append(len(full_rows))
                        else:
                            parse_full = source.plugin.parse_full
                            eager_rows.extend(parse_full(payload[r]) for r in satisfied)

                if exact_timing:
                    caching_seconds += time.perf_counter() - cache_started
                else:
                    post_sample_timer.maybe_stop()

            records_seen += batch.record_count
            if sampling and records_seen >= sample_limit:
                sampling = False
                mode, sample_overhead = _decide_admission(
                    ctx,
                    source,
                    layout_name,
                    cache_fields,
                    nested,
                    eager_rows,
                    eager_records,
                    eager_counts,
                    caching_seconds,
                    to1,
                    tc1,
                    records_seen,
                    bytes_seen,
                )
                caching_seconds = sample_overhead
                if mode == "lazy":
                    eager_rows, eager_records, eager_counts = [], [], []
                else:
                    lazy_offsets = []

    elapsed = time.perf_counter() - operator_started
    caching_seconds += post_sample_timer.estimated_total

    if mode is None:
        mode = "eager"

    caching_seconds += _admit(
        ctx,
        node,
        source,
        mode,
        layout_name,
        cache_fields,
        nested,
        eager_rows,
        eager_records,
        eager_counts,
        lazy_offsets,
        elapsed,
        caching_seconds,
    )

    operator_seconds = max(0.0, elapsed - caching_seconds)
    ctx.report.operator_time += operator_seconds
    ctx.report.caching_time += caching_seconds
    return output
