"""Physical operator building blocks: filtering, hash join, aggregation.

Two families live here.  The row functions (``filter_rows``/``project_rows``/
``hash_join``/``aggregate_rows``) are the original tuple-at-a-time operators
the interpreted executor composes.  The batch functions are their vectorized
counterparts over :class:`~repro.engine.batch.RecordBatch` chunks: predicates
arrive as compiled NumPy mask evaluators, projections and joins move whole
columns, and aggregation folds columns in row order so results stay
bitwise-identical to the interpreted path.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.engine.batch import RecordBatch, concat_batches
from repro.engine.compiler import CompiledAggregate


def filter_rows(rows: Iterable[dict], predicate: Callable[[dict], bool] | None) -> list[dict]:
    """Apply a compiled predicate to a row stream."""
    if predicate is None:
        return list(rows)
    return [row for row in rows if predicate(row)]


def project_rows(rows: Iterable[dict], fields: Sequence[str]) -> list[dict]:
    """Restrict rows to the given fields (missing fields become ``None``)."""
    wanted = list(fields)
    return [{name: row.get(name) for name in wanted} for row in rows]


def hash_join(
    left_rows: Sequence[dict],
    right_rows: Sequence[dict],
    left_key: str,
    right_key: str,
) -> list[dict]:
    """Equi-join two row lists with a classic build/probe hash join.

    The smaller side is used as the build side.  Output rows merge both input
    rows; on column-name collisions the probe side wins (the paper's TPC-H
    style schemas have disjoint column names, so collisions do not arise in
    practice).
    """
    if len(left_rows) <= len(right_rows):
        build_rows, build_key = left_rows, left_key
        probe_rows, probe_key = right_rows, right_key
    else:
        build_rows, build_key = right_rows, right_key
        probe_rows, probe_key = left_rows, left_key

    table: dict[object, list[dict]] = {}
    for row in build_rows:
        key = row.get(build_key)
        if key is None:
            continue
        table.setdefault(key, []).append(row)

    output: list[dict] = []
    for row in probe_rows:
        key = row.get(probe_key)
        if key is None:
            continue
        matches = table.get(key)
        if not matches:
            continue
        for match in matches:
            merged = dict(match)
            merged.update(row)
            output.append(merged)
    return output


def aggregate_rows(
    rows: Iterable[dict],
    aggregates: Sequence[CompiledAggregate],
    group_by: Sequence[str] = (),
) -> list[dict]:
    """Compute aggregates, optionally grouped by a list of columns."""
    if not group_by:
        for row in rows:
            for aggregate in aggregates:
                aggregate.update(row)
        return [{agg.spec.output_name: agg.result() for agg in aggregates}]

    groups: dict[tuple, list[CompiledAggregate]] = {}
    keys = list(group_by)
    for row in rows:
        group_key = tuple(row.get(key) for key in keys)
        state = groups.get(group_key)
        if state is None:
            state = [CompiledAggregate(agg.spec) for agg in aggregates]
            groups[group_key] = state
        for aggregate in state:
            aggregate.update(row)

    results = []
    for group_key, state in groups.items():
        row = dict(zip(keys, group_key))
        for aggregate in state:
            row[aggregate.spec.output_name] = aggregate.result()
        results.append(row)
    return results


# ---------------------------------------------------------------------------
# Batch operators
# ---------------------------------------------------------------------------
def filter_batches(
    batches,
    batch_predicate: Callable[[RecordBatch], np.ndarray],
    dedupe_records: bool = False,
) -> list[RecordBatch]:
    """Apply a compiled batch predicate, keeping only non-empty batches.

    ``dedupe_records`` keeps the first satisfying row of each original record
    (the nested algebra's record-level semantics).  A batch whose rows all
    survive is passed through untouched instead of being copied.
    """
    output: list[RecordBatch] = []
    for batch in batches:
        mask = batch_predicate(batch)
        if dedupe_records:
            indexes = batch.first_true_per_record(mask)
        else:
            indexes = np.nonzero(mask)[0]
        if len(indexes) == batch.row_count:
            output.append(batch)
        elif len(indexes):
            output.append(batch.take(indexes))
    return output


def project_batches(batches: Sequence[RecordBatch], fields: Sequence[str]) -> list[RecordBatch]:
    """Restrict each batch to ``fields`` (missing fields become ``None``)."""
    wanted = list(fields)
    return [batch.project(wanted) for batch in batches]


def hash_join_batches(
    left_batches: Sequence[RecordBatch],
    right_batches: Sequence[RecordBatch],
    left_key: str,
    right_key: str,
) -> list[RecordBatch]:
    """Columnar build/probe hash join over two batch streams.

    Semantics (build-side choice, null keys dropped, probe side wins name
    collisions, output ordered by probe position) match :func:`hash_join`
    exactly; the difference is that rows are never materialized as
    dictionaries — the join gathers whole columns by index instead.
    """
    left = concat_batches(list(left_batches)) if left_batches else RecordBatch({}, 0)
    right = concat_batches(list(right_batches)) if right_batches else RecordBatch({}, 0)
    if left.row_count <= right.row_count:
        build, build_key = left, left_key
        probe, probe_key = right, right_key
    else:
        build, build_key = right, right_key
        probe, probe_key = left, left_key

    table: dict[object, list[int]] = {}
    for index, key in enumerate(build.column(build_key)):
        if key is None:
            continue
        table.setdefault(key, []).append(index)

    build_indexes: list[int] = []
    probe_indexes: list[int] = []
    for index, key in enumerate(probe.column(probe_key)):
        if key is None:
            continue
        matches = table.get(key)
        if not matches:
            continue
        build_indexes.extend(matches)
        probe_indexes.extend([index] * len(matches))

    if not probe_indexes:
        return []
    # Merged field order mirrors dict(match); merged.update(row): build fields
    # first, probe-only fields appended, shared names carrying probe values.
    build_fields = build.field_names()
    probe_fields = set(probe.field_names())
    columns: dict[str, list] = {}
    for name in build_fields:
        if name in probe_fields:
            source = probe.column(name)
            columns[name] = [source[i] for i in probe_indexes]
        else:
            source = build.column(name)
            columns[name] = [source[i] for i in build_indexes]
    for name in probe.field_names():
        if name not in columns:
            source = probe.column(name)
            columns[name] = [source[i] for i in probe_indexes]
    return [RecordBatch(columns, row_count=len(probe_indexes))]


def aggregate_batches(
    batches: Sequence[RecordBatch],
    aggregates: Sequence[CompiledAggregate],
    group_by: Sequence[str] = (),
) -> list[dict]:
    """Compute aggregates over a batch stream, optionally grouped.

    Group states appear in first-occurrence order (matching the interpreted
    path's dict-insertion order), and every aggregate folds its values in row
    order so floating-point results are identical to :func:`aggregate_rows`.
    """
    if not group_by:
        for batch in batches:
            for aggregate in aggregates:
                aggregate.update_batch(batch)
        return [{agg.spec.output_name: agg.result() for agg in aggregates}]

    keys = list(group_by)
    groups: dict[tuple, list[CompiledAggregate]] = {}
    for batch in batches:
        key_columns = [batch.column(key) for key in keys]
        value_lists = [aggregate.batch_values(batch) for aggregate in aggregates]
        for i in range(batch.row_count):
            group_key = tuple(column[i] for column in key_columns)
            state = groups.get(group_key)
            if state is None:
                state = [CompiledAggregate(agg.spec) for agg in aggregates]
                groups[group_key] = state
            for aggregate, values in zip(state, value_lists):
                value = values[i]
                if value is not None:
                    aggregate.update_value(value)

    results = []
    for group_key, state in groups.items():
        row = dict(zip(keys, group_key))
        for aggregate in state:
            row[aggregate.spec.output_name] = aggregate.result()
        results.append(row)
    return results
