"""Physical operator building blocks: filtering, hash join, aggregation.

These are deliberately simple, allocation-light functions over lists of
dictionaries — the executor composes them per query after the compiler has
specialized the predicates and aggregate accessors.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.engine.compiler import CompiledAggregate


def filter_rows(rows: Iterable[dict], predicate: Callable[[dict], bool] | None) -> list[dict]:
    """Apply a compiled predicate to a row stream."""
    if predicate is None:
        return list(rows)
    return [row for row in rows if predicate(row)]


def project_rows(rows: Iterable[dict], fields: Sequence[str]) -> list[dict]:
    """Restrict rows to the given fields (missing fields become ``None``)."""
    wanted = list(fields)
    return [{name: row.get(name) for name in wanted} for row in rows]


def hash_join(
    left_rows: Sequence[dict],
    right_rows: Sequence[dict],
    left_key: str,
    right_key: str,
) -> list[dict]:
    """Equi-join two row lists with a classic build/probe hash join.

    The smaller side is used as the build side.  Output rows merge both input
    rows; on column-name collisions the probe side wins (the paper's TPC-H
    style schemas have disjoint column names, so collisions do not arise in
    practice).
    """
    if len(left_rows) <= len(right_rows):
        build_rows, build_key = left_rows, left_key
        probe_rows, probe_key = right_rows, right_key
    else:
        build_rows, build_key = right_rows, right_key
        probe_rows, probe_key = left_rows, left_key

    table: dict[object, list[dict]] = {}
    for row in build_rows:
        key = row.get(build_key)
        if key is None:
            continue
        table.setdefault(key, []).append(row)

    output: list[dict] = []
    for row in probe_rows:
        key = row.get(probe_key)
        if key is None:
            continue
        matches = table.get(key)
        if not matches:
            continue
        for match in matches:
            merged = dict(match)
            merged.update(row)
            output.append(merged)
    return output


def aggregate_rows(
    rows: Iterable[dict],
    aggregates: Sequence[CompiledAggregate],
    group_by: Sequence[str] = (),
) -> list[dict]:
    """Compute aggregates, optionally grouped by a list of columns."""
    if not group_by:
        for row in rows:
            for aggregate in aggregates:
                aggregate.update(row)
        return [{agg.spec.output_name: agg.result() for agg in aggregates}]

    groups: dict[tuple, list[CompiledAggregate]] = {}
    keys = list(group_by)
    for row in rows:
        group_key = tuple(row.get(key) for key in keys)
        state = groups.get(group_key)
        if state is None:
            state = [CompiledAggregate(agg.spec) for agg in aggregates]
            groups[group_key] = state
        for aggregate in state:
            aggregate.update(row)

    results = []
    for group_key, state in groups.items():
        row = dict(zip(keys, group_key))
        for aggregate in state:
            row[aggregate.spec.output_name] = aggregate.result()
        results.append(row)
    return results
