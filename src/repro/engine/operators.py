"""Physical operator building blocks: filtering, hash join, aggregation.

Two families live here.  The row functions (``filter_rows``/``project_rows``/
``hash_join``/``aggregate_rows``) are the original tuple-at-a-time operators
the interpreted executor composes.  The batch functions are their vectorized
counterparts over :class:`~repro.engine.batch.RecordBatch` chunks: predicates
arrive as compiled NumPy mask evaluators, projections and joins move whole
columns, and aggregation folds columns in row order so results stay
bitwise-identical to the interpreted path.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.engine.batch import RecordBatch, concat_batches, object_validity_mask
from repro.engine.compiler import CompiledAggregate


def filter_rows(rows: Iterable[dict], predicate: Callable[[dict], bool] | None) -> list[dict]:
    """Apply a compiled predicate to a row stream."""
    if predicate is None:
        return list(rows)
    return [row for row in rows if predicate(row)]


def project_rows(rows: Iterable[dict], fields: Sequence[str]) -> list[dict]:
    """Restrict rows to the given fields (missing fields become ``None``)."""
    wanted = list(fields)
    return [{name: row.get(name) for name in wanted} for row in rows]


def _check_join_columns(
    left_fields: Iterable[str],
    right_fields: Iterable[str],
    left_key: str,
    right_key: str,
) -> None:
    """Reject joins whose sides share column names the merge would overwrite.

    The merged output carries every column of both sides, so the only shared
    name with well-defined semantics is a join key spelled identically on
    both sides (its values agree on every matched row).  Any other overlap
    used to be silently resolved "probe side wins" — wrong data with no
    warning — and now raises instead.  Both join paths apply the check only
    when both sides are non-empty: an empty side yields an empty (trivially
    correct) output, and the row path has no schema to inspect there.
    """
    allowed = {left_key} if left_key == right_key else set()
    overlap = sorted((set(left_fields) & set(right_fields)) - allowed)
    if overlap:
        raise ValueError(
            f"join would silently overwrite overlapping non-key columns {overlap}; "
            "project or rename them on one side before joining"
        )


def hash_join(
    left_rows: Sequence[dict],
    right_rows: Sequence[dict],
    left_key: str,
    right_key: str,
) -> list[dict]:
    """Equi-join two row lists with a classic build/probe hash join.

    The smaller side is used as the build side.  Output rows merge both input
    rows (build-side fields first); the only permitted shared column name is
    a join key spelled identically on both sides — any other overlap raises
    ``ValueError`` (checked against the first row of each side; the engine's
    scans produce uniform field sets per side).
    """
    if left_rows and right_rows:
        _check_join_columns(left_rows[0], right_rows[0], left_key, right_key)
    if len(left_rows) <= len(right_rows):
        build_rows, build_key = left_rows, left_key
        probe_rows, probe_key = right_rows, right_key
    else:
        build_rows, build_key = right_rows, right_key
        probe_rows, probe_key = left_rows, left_key

    table: dict[object, list[dict]] = {}
    for row in build_rows:
        key = row.get(build_key)
        if key is None:
            continue
        table.setdefault(key, []).append(row)

    output: list[dict] = []
    for row in probe_rows:
        key = row.get(probe_key)
        if key is None:
            continue
        matches = table.get(key)
        if not matches:
            continue
        for match in matches:
            merged = dict(match)
            merged.update(row)
            output.append(merged)
    return output


def aggregate_rows(
    rows: Iterable[dict],
    aggregates: Sequence[CompiledAggregate],
    group_by: Sequence[str] = (),
) -> list[dict]:
    """Compute aggregates, optionally grouped by a list of columns."""
    if not group_by:
        for row in rows:
            for aggregate in aggregates:
                aggregate.update(row)
        return [{agg.spec.output_name: agg.result() for agg in aggregates}]

    groups: dict[tuple, list[CompiledAggregate]] = {}
    keys = list(group_by)
    for row in rows:
        group_key = tuple(row.get(key) for key in keys)
        state = groups.get(group_key)
        if state is None:
            state = [CompiledAggregate(agg.spec) for agg in aggregates]
            groups[group_key] = state
        for aggregate in state:
            aggregate.update(row)

    results = []
    for group_key, state in groups.items():
        row = dict(zip(keys, group_key))
        for aggregate in state:
            row[aggregate.spec.output_name] = aggregate.result()
        results.append(row)
    return results


# ---------------------------------------------------------------------------
# Batch operators
# ---------------------------------------------------------------------------
def filter_batches(
    batches,
    batch_predicate: Callable[[RecordBatch], np.ndarray],
    dedupe_records: bool = False,
) -> list[RecordBatch]:
    """Apply a compiled batch predicate, keeping only non-empty batches.

    ``dedupe_records`` keeps the first satisfying row of each original record
    (the nested algebra's record-level semantics).  A batch whose rows all
    survive is passed through untouched instead of being copied.
    """
    output: list[RecordBatch] = []
    for batch in batches:
        mask = batch_predicate(batch)
        if dedupe_records:
            indexes = batch.first_true_per_record(mask)
        else:
            indexes = np.nonzero(mask)[0]
        if len(indexes) == batch.row_count:
            output.append(batch)
        elif len(indexes):
            output.append(batch.take(indexes))
    return output


def project_batches(batches: Sequence[RecordBatch], fields: Sequence[str]) -> list[RecordBatch]:
    """Restrict each batch to ``fields`` (missing fields become ``None``)."""
    wanted = list(fields)
    return [batch.project(wanted) for batch in batches]


def hash_join_batches(
    left_batches: Sequence[RecordBatch],
    right_batches: Sequence[RecordBatch],
    left_key: str,
    right_key: str,
) -> list[RecordBatch]:
    """Columnar equi-join over two batch streams with a factorized probe.

    Semantics (build-side choice, null keys dropped, output ordered by probe
    position with matches in build order, shared join-key names carrying
    probe values, overlapping non-key columns rejected) match
    :func:`hash_join` bit for bit.  Mechanically the join is factorized: the
    build keys are grouped once into dense codes with contiguous row-index
    slices, the probe resolves whole key columns to those codes — via NumPy
    ``searchsorted`` over the float64 views when both key columns are
    numeric, one dict pass otherwise — and the matched (probe, build) row
    indexes are expanded as arrays, never through per-row list appends.  The
    output gathers whole columns by those index arrays and re-uses any
    already-built float64 views of the inputs.
    """
    left = concat_batches(list(left_batches)) if left_batches else RecordBatch({}, 0)
    right = concat_batches(list(right_batches)) if right_batches else RecordBatch({}, 0)
    if left.row_count and right.row_count:
        _check_join_columns(left.field_names(), right.field_names(), left_key, right_key)
    if left.row_count <= right.row_count:
        build, build_key = left, left_key
        probe, probe_key = right, right_key
    else:
        build, build_key = right, right_key
        probe, probe_key = left, left_key

    probe_indexes, build_indexes = _factorized_probe(build, build_key, probe, probe_key)
    if len(probe_indexes) == 0:
        return []
    probe_list = probe_indexes.tolist()  # rowwise-fallback: join output gathers object columns through Python; numeric columns regather from the float64 views
    build_list = build_indexes.tolist()  # rowwise-fallback: join output gathers object columns through Python (see above)
    # Merged field order mirrors dict(match); merged.update(row): build fields
    # first, probe-only fields appended, shared names carrying probe values.
    build_fields = build.field_names()
    probe_fields = set(probe.field_names())
    columns: dict[str, list] = {}
    gathered_from: dict[str, tuple[RecordBatch, np.ndarray]] = {}
    for name in build_fields:
        if name in probe_fields:
            source_batch, indexes, index_list = probe, probe_indexes, probe_list
        else:
            source_batch, indexes, index_list = build, build_indexes, build_list
        source = source_batch.column(name)
        columns[name] = [source[i] for i in index_list]  # rowwise-fallback: object-column gather of the join output (numeric views reseeded below)
        gathered_from[name] = (source_batch, indexes)
    for name in probe.field_names():
        if name not in columns:
            source = probe.column(name)
            columns[name] = [source[i] for i in probe_list]  # rowwise-fallback: object-column gather of the join output (numeric views reseeded below)
            gathered_from[name] = (probe, probe_indexes)
    joined = RecordBatch(columns, row_count=len(probe_list))
    # Numeric views already built on the inputs (layouts pre-seed them, the
    # probe builds the key views) gather straight into the output, so a
    # downstream aggregate/filter never re-scans the joined columns.
    for name, (source_batch, indexes) in gathered_from.items():
        view = source_batch._numeric.get(name)
        if view is not None:
            joined.set_numeric_view(name, view[indexes])
    return [joined]


_NO_MATCHES = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def _factorized_probe(
    build: RecordBatch, build_key: str, probe: RecordBatch, probe_key: str
) -> tuple[np.ndarray, np.ndarray]:
    """Matched ``(probe_rows, build_rows)`` index arrays in probe order.

    Every probe row that finds its key in the build side contributes one
    output slot per matching build row, matches ordered by build position —
    exactly :func:`hash_join`'s ``table[key]`` list semantics.
    """
    if build.row_count == 0 or probe.row_count == 0:
        return _NO_MATCHES
    vectorized = _vectorized_key_probe(build, build_key, probe, probe_key)
    if vectorized is not None:
        return vectorized
    return _dict_key_probe(build.column(build_key), probe.column(probe_key))


def _key_view(batch: RecordBatch, key: str) -> np.ndarray | None:
    """A float64 key view usable for vectorized matching, else ``None``.

    Usable means: the column is purely numeric, every NaN slot is a genuine
    ``None`` (a real ``float('nan')`` data value carries the interpreter's
    dict-identity semantics, which float equality cannot reproduce), and no
    magnitude reaches 2**53, beyond which float64 would merge distinct
    integer keys — the same guards :func:`_factorize_keys` applies for
    group-by.
    """
    view = batch.numeric_view(key)
    if view is None:
        return None
    nan_mask = np.isnan(view)
    if nan_mask.any():
        values = batch.column(key)
        if not all(values[i] is None for i in np.nonzero(nan_mask)[0].tolist()):  # rowwise-fallback: NaN-provenance audit (None vs real NaN) touches only the NaN positions
            return None
        valid = view[~nan_mask]
        if len(valid) and np.abs(valid).max() >= 2**53:
            return None
    elif len(view) and np.abs(view).max() >= 2**53:
        return None
    return view


def _vectorized_key_probe(
    build: RecordBatch, build_key: str, probe: RecordBatch, probe_key: str
) -> tuple[np.ndarray, np.ndarray] | None:
    """The NumPy probe over numeric key columns, or ``None`` to take the
    dict pass (mixed/string/huge/NaN-valued keys).

    Float64 equality merges ``1``/``1.0``/``True`` exactly like dict hashing
    does, so matching ``searchsorted`` positions on the sorted unique build
    keys reproduces the interpreter's lookups; a stable argsort keeps each
    key group's build rows in build order.
    """
    build_view = _key_view(build, build_key)
    probe_view = _key_view(probe, probe_key)
    if build_view is None or probe_view is None:
        return None
    build_valid = ~np.isnan(build_view)
    probe_valid = ~np.isnan(probe_view)
    build_values = build_view[build_valid]
    probe_values = probe_view[probe_valid]
    if len(build_values) == 0 or len(probe_values) == 0:
        return _NO_MATCHES
    build_rows = np.nonzero(build_valid)[0]
    order = np.argsort(build_values, kind="stable")
    sorted_values = build_values[order]
    sorted_rows = build_rows[order]
    unique_values, group_starts = np.unique(sorted_values, return_index=True)
    group_counts = np.diff(np.append(group_starts, len(sorted_values)))

    probe_rows = np.nonzero(probe_valid)[0]
    positions = np.searchsorted(unique_values, probe_values)
    positions = np.minimum(positions, len(unique_values) - 1)
    matched = unique_values[positions] == probe_values
    groups = positions[matched]
    return _expand_matches(
        probe_rows[matched], group_starts[groups], group_counts[groups], sorted_rows
    )


def _dict_key_probe(build_keys: list, probe_keys: list) -> tuple[np.ndarray, np.ndarray]:
    """One dict pass per side — the interpreter's own key semantics (object
    hashing, identity-sensitive NaN) — with the match expansion still done
    as arrays instead of per-row list appends."""
    codes_by_key: dict = {}
    slot_rows: list[list[int]] = []
    for index, key in enumerate(build_keys):
        if key is None:
            continue
        code = codes_by_key.get(key)
        if code is None:
            codes_by_key[key] = code = len(slot_rows)
            slot_rows.append([])
        slot_rows[code].append(index)

    lookup = codes_by_key.get
    probe_rows: list[int] = []
    probe_codes: list[int] = []
    for index, key in enumerate(probe_keys):
        if key is None:
            continue
        code = lookup(key)
        if code is not None:
            probe_rows.append(index)
            probe_codes.append(code)
    if not probe_rows:
        return _NO_MATCHES

    counts = np.fromiter(map(len, slot_rows), dtype=np.int64, count=len(slot_rows))  # rowwise-fallback: object-key probe is a Python dict walk; fromiter packs its matches back into arrays
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    flat_rows = np.fromiter(  # rowwise-fallback: packs the dict-probe matches back into arrays (see above)
        (row for rows in slot_rows for row in rows), dtype=np.int64, count=int(counts.sum())
    )
    codes = np.asarray(probe_codes, dtype=np.int64)
    return _expand_matches(
        np.asarray(probe_rows, dtype=np.int64), starts[codes], counts[codes], flat_rows
    )


def _expand_matches(
    probe_rows: np.ndarray,
    match_starts: np.ndarray,
    match_counts: np.ndarray,
    grouped_build_rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-probe-row group slices into aligned output index arrays.

    ``grouped_build_rows`` holds the build rows grouped by key (each group a
    contiguous ``starts``/``counts`` slice in build order); the expansion
    repeats each probe row by its group size and enumerates the group slice
    with one ``arange`` — the vectorized equivalent of the interpreter's
    "for match in matches: append" inner loop.
    """
    total = int(match_counts.sum())
    if total == 0:
        return _NO_MATCHES
    probe_indexes = np.repeat(probe_rows, match_counts)
    ends = np.cumsum(match_counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - match_counts, match_counts)
    build_indexes = grouped_build_rows[np.repeat(match_starts, match_counts) + offsets]
    return probe_indexes, build_indexes


def aggregate_batches(
    batches: Sequence[RecordBatch],
    aggregates: Sequence[CompiledAggregate],
    group_by: Sequence[str] = (),
) -> list[dict]:
    """Compute aggregates over a batch stream, optionally grouped.

    Grouped aggregation is NumPy-backed: the key columns are factorized into
    dense group codes (vectorized through float64 views where the keys are
    null-free numerics, a single dict pass otherwise), rows are gathered per
    group with one stable argsort, and each aggregate reduces contiguous
    per-group slices.  Group rows appear in first-occurrence order (matching
    the interpreted path's dict-insertion order) and every reduction folds
    its values left-to-right in row order, so results — including
    floating-point sums and value types of min/max — are identical to
    :func:`aggregate_rows`.
    """
    if not group_by:
        for batch in batches:
            for aggregate in aggregates:
                aggregate.update_batch(batch)
        return [{agg.spec.output_name: agg.result() for agg in aggregates}]

    merged = concat_batches(list(batches)) if batches else RecordBatch({}, 0)
    if merged.row_count == 0:
        return []
    keys = list(group_by)
    codes, group_keys = _factorize_keys(merged, keys)
    results = [dict(zip(keys, key_values)) for key_values in group_keys]
    for aggregate in aggregates:
        values = aggregate.batch_values(merged)
        outputs = _grouped_reduce(aggregate.spec.func, values, codes, len(group_keys))
        name = aggregate.spec.output_name
        for row, value in zip(results, outputs):
            row[name] = value
    return results


def _factorize_keys(batch: RecordBatch, keys: Sequence[str]) -> tuple[np.ndarray, list[tuple]]:
    """Dense group codes plus the group key tuples in first-occurrence order.

    Null-free numeric key columns factorize fully vectorized via their float64
    views (float equality merges ``1``/``1.0``/``True`` exactly like the
    interpreter's dict hashing does, and the representative key value is the
    first-occurrence original, type preserved).  Any other key column — or a
    packed multi-key code too wide for int64 — falls back to one dict pass
    over the rows, which is the interpreter's own grouping rule applied once
    per row instead of once per row *per aggregate*.
    """
    columns = [batch.column(key) for key in keys]
    arrays: list[np.ndarray] | None = []
    for key in keys:
        array = batch.numeric_view(key)
        # NaN (a null somewhere in the column) needs the dict pass for its
        # key identity; so do magnitudes at or beyond 2**53, where float64
        # can no longer represent every integer and distinct keys would
        # silently merge.
        if array is None or np.isnan(array).any() or np.abs(array).max() >= 2**53:
            arrays = None
            break
        arrays.append(array)

    if arrays is not None:
        combined = arrays[0]
        if len(arrays) > 1:
            packed = None
            for array in arrays:
                _, inverse = np.unique(array, return_inverse=True)
                width = int(inverse.max()) + 1
                if packed is None:
                    packed = inverse.astype(np.int64)
                elif packed.max() > (2**62) // width:
                    packed = None  # would overflow int64: take the dict path
                    break
                else:
                    packed = packed * width + inverse
            combined = packed
        if combined is not None:
            codes, first_rows = _first_occurrence_codes(combined)
            group_keys = [
                tuple(column[row] for column in columns) for row in first_rows.tolist()  # rowwise-fallback: materializes one key tuple per group — group-count work, not row-count
            ]
            return codes, group_keys

    ids: dict = {}
    if len(columns) == 1:
        codes_list = [ids.setdefault(value, len(ids)) for value in columns[0]]
        group_keys = [(value,) for value in ids]
    else:
        codes_list = [ids.setdefault(row_key, len(ids)) for row_key in zip(*columns)]
        group_keys = list(ids)
    return np.asarray(codes_list, dtype=np.int64), group_keys


def _first_occurrence_codes(array: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factorize ``array`` into dense codes numbered by first occurrence.

    Returns ``(codes, first_rows)`` where ``codes[i]`` is the group ordinal of
    row ``i`` and ``first_rows[g]`` is the row index where group ``g`` first
    appears (both in first-occurrence order, matching dict-insertion order).
    """
    _, first_index, inverse = np.unique(array, return_index=True, return_inverse=True)
    order = np.argsort(first_index, kind="stable")
    rank = np.empty(len(first_index), dtype=np.int64)
    rank[order] = np.arange(len(first_index), dtype=np.int64)
    return rank[inverse], first_index[order]


def _grouped_reduce(func: str, values: list, codes: np.ndarray, n_groups: int) -> list:
    """Reduce one aggregate's per-row values into one output value per group.

    Null rows are dropped by the interpreter's exact rule (``value is not
    None``); the surviving rows are gathered per group with a stable argsort
    so each group's slice preserves row order, then reduced with the
    C-implemented builtins — ``sum`` seeded with ``0.0`` reproduces the
    interpreter's left-to-right float accumulation bit for bit, and
    ``min``/``max`` keep the original value objects (and their types) rather
    than float64 coercions.  Non-numeric values take the same path: the
    builtins are the per-value fallback, applied per group instead of per row.
    """
    valid = object_validity_mask(values)
    vcodes = codes[valid]
    if func == "count":
        return np.bincount(vcodes, minlength=n_groups).tolist()  # rowwise-fallback: one count per group — group-count work, not row-count
    vrows = np.nonzero(valid)[0]
    order = np.argsort(vcodes, kind="stable")
    boundaries = np.searchsorted(vcodes[order], np.arange(n_groups + 1))
    gathered = [values[i] for i in vrows[order].tolist()]  # rowwise-fallback: object aggregation gathers the surviving values to reproduce interpreter semantics exactly
    starts = boundaries[:-1].tolist()  # rowwise-fallback: group boundaries — group-count work, not row-count
    ends = boundaries[1:].tolist()  # rowwise-fallback: group boundaries — group-count work, not row-count
    if func == "sum":
        return [sum(gathered[s:e], 0.0) for s, e in zip(starts, ends)]
    if func == "avg":
        return [
            sum(gathered[s:e], 0.0) / (e - s) if e > s else None
            for s, e in zip(starts, ends)
        ]
    if func == "min":
        return [min(gathered[s:e]) if e > s else None for s, e in zip(starts, ends)]
    return [max(gathered[s:e]) if e > s else None for s, e in zip(starts, ends)]
