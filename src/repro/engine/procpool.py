"""Worker-process execution pool over shared-memory cached columns.

This is the "escape the GIL" half of the serving tier: coordinator threads
keep owning admission, eviction, ``SharedBudget`` accounting and future
resolution, while the vectorized scan/aggregate work for cache-hit queries
is shipped to worker *processes* as compact, picklable plan descriptors
(:class:`ScanTask`).  Workers map the columns the :class:`ShmRegistry`
published into shared memory, rebuild a schema-free :class:`ColumnarLayout`
around them, and run the exact same batch pipeline
(``range_filtered_batch`` → ``aggregate_batches``/``rows_from_batches``)
the in-process path runs — parity with ``execution_mode=threads`` is by
construction, not by re-implementation.

Timing discipline (the cross-process clock bugfix): workers report only
*durations* measured on their own monotonic clock (:class:`ScanTaskResult`
carries ``scan_seconds``/``operator_seconds``, never ``*_at`` timestamps).
All queue/wait intervals are computed in the coordinator from coordinator
clocks; a regression test introspects the result type to keep it that way.

Crash semantics: the ``server.worker:worker_crash`` fault scope maps to
*real* process death here (``os._exit``), not a raised exception.  The pool
detects the dead pipe, raises a typed :class:`WorkerCrashed` to the caller
(budget conserved, futures failed — same containment contract as the
thread path), and respawns a replacement on the next checkout.
"""

from __future__ import annotations

import contextlib
import os
import queue
import threading
import time
from dataclasses import dataclass
from multiprocessing import get_context, resource_tracker, shared_memory

import numpy as np

from repro.core.errors import ReCacheError, WorkerCrashed
from repro.core.shm_registry import EntryExport
from repro.engine.expressions import AggregateSpec
from repro.faults import runtime as faults

_IDLE_POLL_SECONDS = 0.05
_JOIN_TIMEOUT_SECONDS = 5.0
_WORKER_LAYOUT_CACHE = 32
_CRASH_EXIT_CODE = 11


@dataclass(frozen=True)
class ScanTask:
    """One offloaded cache-hit scan, fully described by picklable values.

    ``fault_specs`` re-serializes the coordinator's active fault plan
    (``FaultSpec.as_string()``) so chaos schedules reach into workers; the
    worker re-installs the plan whenever the (specs, seed) signature
    changes.
    """

    export: EntryExport
    ranges: tuple[tuple[str, float, float], ...]
    fields: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    group_by: tuple[str, ...]
    fault_specs: tuple[str, ...] = ()
    fault_seed: int = 0


@dataclass(frozen=True)
class ScanTaskResult:
    """A worker's answer: rows plus *durations only*.

    No ``perf_counter()`` timestamps cross the process boundary — worker
    and coordinator clocks are not comparable, so wait intervals must be
    computed coordinator-side (see the timing regression test).
    """

    rows: list[dict]
    scanned_rows: int
    scan_seconds: float
    operator_seconds: float


# ===========================================================================
# Worker side (runs in the child process)
# ===========================================================================
def _attach_layout(
    export: EntryExport, cache: dict[str, tuple[shared_memory.SharedMemory, object]]
):
    """Map the export's segment and rebuild a scannable ColumnarLayout.

    The float64 column views are pre-seeded zero-copy straight off the
    mapped buffer (int64 columns get one ``astype`` copy); the Python-list
    columns are exact ``tolist()`` round-trips, so row materialization and
    aggregation see the same values the coordinator cached.
    """
    from repro.layouts.columnar import ColumnarLayout

    cached = cache.get(export.segment)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=export.segment)
    with contextlib.suppress(KeyError, ValueError):  # tracker internals vary
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    columns: dict[str, list] = {}
    numeric: dict[str, np.ndarray] = {}
    for ref in export.columns:
        arr = np.ndarray((ref.count,), dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset)
        columns[ref.field] = arr.tolist()
        numeric[ref.field] = arr if arr.dtype == np.float64 else arr.astype(np.float64)
    layout = ColumnarLayout(None, list(export.fields), columns)
    validity = np.ones(export.row_count, dtype=bool)
    for field, float_view in numeric.items():
        layout._numeric_arrays[field] = float_view  # noqa: SLF001
        layout._validity_arrays[field] = validity  # noqa: SLF001
    cache[export.segment] = (shm, layout)
    while len(cache) > _WORKER_LAYOUT_CACHE:
        evicted, _ = cache.pop(next(iter(cache)))
        # BufferError: numpy views still alive; GC unmaps the buffer later.
        with contextlib.suppress(BufferError):
            evicted.close()
    return layout


def _run_task(task: ScanTask, cache: dict) -> ScanTaskResult:
    """Execute one task against mapped shared memory (worker process)."""
    from repro.engine.compiler import compile_aggregates
    from repro.engine.operators import aggregate_batches
    from repro.engine.batch import rows_from_batches

    layout = _attach_layout(task.export, cache)
    ranges = {field: (low, high) for field, low, high in task.ranges}
    scan_started = time.perf_counter()
    batch = layout.range_filtered_batch(ranges, fields=list(task.fields), dedupe_records=False)
    scan_seconds = time.perf_counter() - scan_started
    batches = [batch] if batch.row_count else []
    operator_started = time.perf_counter()
    if task.aggregates or task.group_by:
        rows = aggregate_batches(
            batches, compile_aggregates(list(task.aggregates)), list(task.group_by)
        )
    else:
        rows = rows_from_batches(batches)
    operator_seconds = time.perf_counter() - operator_started
    return ScanTaskResult(
        rows=rows,
        scanned_rows=layout.flattened_row_count,
        scan_seconds=scan_seconds,
        operator_seconds=operator_seconds,
    )


def _install_worker_faults(task: ScanTask, installed: tuple | None) -> tuple | None:
    """(Re)install the shipped fault plan when its signature changes."""
    signature = (task.fault_specs, task.fault_seed)
    if signature == installed:
        return installed
    if task.fault_specs:
        faults.install_spec(";".join(task.fault_specs), seed=task.fault_seed)
    else:
        faults.install(None)
    return signature


def _worker_main(conn) -> None:
    """Child-process loop: recv ScanTask, send ("ok"|"error", payload).

    Top-level (not a closure) so it survives spawn-mode pickling.  A
    ``server.worker`` fault firing here is *real* process death — the
    coordinator must observe a dead pipe, not a pickled exception.
    """
    cache: dict[str, tuple[shared_memory.SharedMemory, object]] = {}
    installed: tuple | None = None
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        installed = _install_worker_faults(task, installed)
        injector = faults.injector_for("server.worker")
        if injector is not None and injector.fires():
            os._exit(_CRASH_EXIT_CODE)
        try:
            result = _run_task(task, cache)
        except ReCacheError as exc:
            conn.send(("error", exc))
        except BaseException as exc:  # pragma: no cover - defensive wrap
            conn.send(("error", RuntimeError(f"{type(exc).__name__}: {exc}")))
        else:
            conn.send(("ok", result))


# ===========================================================================
# Coordinator side
# ===========================================================================
class _WorkerHandle:
    """One worker process plus the coordinator end of its pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class ProcessExecutionPool:
    """A fixed-size pool of spawn-mode worker processes.

    Workers are spawned lazily (first use pays the cold start, idle pools
    cost nothing) and checked out one task at a time over a dedicated
    pipe, so a crashed worker poisons exactly the task it was running.
    ``spawn`` is used even where fork is available: the coordinator is
    heavily threaded and fork would duplicate locks mid-flight.
    """

    GUARDED_BY = {"_procs": "_lock", "_spawned": "_lock", "_closed": "_lock"}

    def __init__(self, worker_count: int, start_method: str = "spawn") -> None:
        self._ctx = get_context(start_method)
        self.worker_count = max(1, int(worker_count))
        self._lock = threading.Lock()
        self._idle: queue.Queue[_WorkerHandle] = queue.Queue()
        self._procs: dict[int, _WorkerHandle] = {}
        self._spawned = 0
        self._closed = False

    # -- task execution -------------------------------------------------------
    def execute(self, task: ScanTask) -> ScanTaskResult:
        """Run one task on any worker; raises WorkerCrashed on process death."""
        handle = self._checkout()
        try:
            status, payload = self._roundtrip(handle, task)
        except BaseException:
            # WorkerCrashed or a local protocol failure: the pipe can no
            # longer be trusted, retire the worker (next checkout respawns).
            self._discard(handle)
            raise
        self._idle.put(handle)
        if status == "error":
            raise payload
        return payload

    def _roundtrip(self, handle: _WorkerHandle, task: ScanTask) -> tuple[str, object]:
        process = handle.process
        try:
            handle.conn.send(task)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(
                f"worker pid={process.pid} died before accepting a task "
                f"(exitcode {process.exitcode})"
            ) from exc
        while True:
            try:
                if handle.conn.poll(_IDLE_POLL_SECONDS):
                    return handle.conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrashed(
                    f"worker pid={process.pid} died mid-task (exitcode {process.exitcode})"
                ) from exc
            if not process.is_alive():
                # Final drain: the worker may have sent its answer and
                # exited between our poll and the liveness check.
                with contextlib.suppress(EOFError, OSError):
                    if handle.conn.poll(0):
                        return handle.conn.recv()
                raise WorkerCrashed(
                    f"worker pid={process.pid} died mid-task (exitcode {process.exitcode})"
                )

    # -- worker lifecycle -----------------------------------------------------
    def _checkout(self) -> _WorkerHandle:
        while True:
            with contextlib.suppress(queue.Empty):
                return self._idle.get_nowait()
            with self._lock:
                if self._closed:
                    raise WorkerCrashed("process pool is shut down")
                if self._spawned < self.worker_count:
                    self._spawned += 1
                    return self._spawn()
            try:
                return self._idle.get(timeout=_IDLE_POLL_SECONDS)
            except queue.Empty:
                continue

    def _spawn(self) -> _WorkerHandle:  # caller-holds: self._lock
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"recache-exec-{self._spawned}",
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(process, parent_conn)
        self._procs[id(handle)] = handle
        return handle

    def _discard(self, handle: _WorkerHandle) -> None:
        """Retire a dead/poisoned worker; capacity is freed for a respawn."""
        with self._lock:
            self._procs.pop(id(handle), None)
            self._spawned -= 1
        with contextlib.suppress(OSError):
            handle.conn.close()
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=_JOIN_TIMEOUT_SECONDS)

    def shutdown(self, wait: bool = True) -> None:
        """Stop every worker; ``wait=False`` terminates instead of draining."""
        with self._lock:
            self._closed = True
            handles = list(self._procs.values())
            self._procs.clear()
        while True:
            try:
                self._idle.get_nowait()
            except queue.Empty:
                break
        for handle in handles:
            if wait:
                with contextlib.suppress(BrokenPipeError, OSError):
                    handle.conn.send(None)
            elif handle.process.is_alive():
                handle.process.terminate()
        for handle in handles:
            handle.process.join(timeout=_JOIN_TIMEOUT_SECONDS)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(timeout=_JOIN_TIMEOUT_SECONDS)
            with contextlib.suppress(OSError):
                handle.conn.close()

    # -- introspection --------------------------------------------------------
    def live_worker_pids(self) -> list[int]:
        with self._lock:
            handles = list(self._procs.values())
        return [h.process.pid for h in handles if h.process.is_alive()]
