"""Shared engine types: the nested data model and result containers.

The paper's substrate (Proteus) expresses heterogeneous data through a nested
data model: records whose fields are atoms, lists, or further records.  The
classes here mirror that model and provide the schema utilities ReCache needs:

* enumerating *leaf paths* (dotted attribute paths such as
  ``"lineitems.l_quantity"``),
* distinguishing nested paths (paths that traverse a list) from non-nested
  ones — the distinction that drives the Parquet-vs-columnar layout decision,
* computing the *flattened* relational schema obtained by the flattening
  transformation described in Section 4 of the paper.

The module also defines :class:`ColumnarResult`, the columnar query-output
container returned when a query opts into ``result_format="columnar"``: the
batched pipeline's :class:`~repro.engine.batch.RecordBatch` stream carried to
the caller without the per-row dictionary materialization tax at the pipeline
exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.engine.batch import RecordBatch, rows_from_batches


class DataType:
    """Base class for all data types in the nested model."""

    #: short type code used in signatures
    code = "?"

    def is_atom(self) -> bool:
        return isinstance(self, AtomType)

    def signature(self) -> str:
        return self.code

    def __repr__(self) -> str:
        return self.signature()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataType) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


class AtomType(DataType):
    """A scalar type (integer, float, string or boolean)."""

    def __init__(self, code: str, python_type: type) -> None:
        self.code = code
        self.python_type = python_type

    def parse(self, text: str):
        """Parse a raw textual value (as found in a CSV file) into Python."""
        if self.python_type is bool:
            return text.strip().lower() in ("1", "true", "t", "yes")
        return self.python_type(text)


#: Singleton atom types used throughout the engine.
INT = AtomType("i", int)
FLOAT = AtomType("f", float)
STRING = AtomType("s", str)
BOOL = AtomType("b", bool)

_ATOMS_BY_CODE = {atom.code: atom for atom in (INT, FLOAT, STRING, BOOL)}


def atom_from_code(code: str) -> AtomType:
    """Return the singleton atom type for a one-character type code."""
    try:
        return _ATOMS_BY_CODE[code]
    except KeyError as exc:
        raise ValueError(f"unknown atom type code: {code!r}") from exc


@dataclass(frozen=True)
class Field:
    """A named, typed field of a record."""

    name: str
    dtype: DataType

    def signature(self) -> str:
        return f"{self.name}:{self.dtype.signature()}"


class ListType(DataType):
    """A homogeneous collection type (JSON arrays)."""

    def __init__(self, element: DataType) -> None:
        self.element = element

    def signature(self) -> str:
        return f"[{self.element.signature()}]"


class RecordType(DataType):
    """An ordered collection of named fields (JSON objects / table rows)."""

    def __init__(self, fields: Sequence[Field]) -> None:
        self.fields = list(fields)
        self._by_name = {f.name: f for f in self.fields}
        if len(self._by_name) != len(self.fields):
            raise ValueError("duplicate field names in record type")

    def signature(self) -> str:
        inner = ",".join(f.signature() for f in self.fields)
        return f"{{{inner}}}"

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise KeyError(f"no field named {name!r} in {self.signature()}") from exc

    def has_field(self, name: str) -> bool:
        return name in self._by_name

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    # ------------------------------------------------------------------
    # Path utilities
    # ------------------------------------------------------------------
    def leaf_paths(self) -> list[str]:
        """Return all dotted paths to atom-typed leaves, in schema order."""
        return [path for path, _ in self.leaf_items()]

    def leaf_items(self) -> list[tuple[str, AtomType]]:
        """Return ``(path, atom_type)`` pairs for all leaves, in schema order."""
        items: list[tuple[str, AtomType]] = []
        for field in self.fields:
            items.extend(_leaf_items(field.name, field.dtype))
        return items

    def path_type(self, path: str) -> DataType:
        """Resolve the type at a dotted path (descending through lists).

        A field whose *name* itself contains dots (the flattened schemas
        produced by :meth:`flattened`) takes precedence over path traversal.
        """
        if self.has_field(path):
            return self.field(path).dtype
        current: DataType = self
        for part in path.split("."):
            while isinstance(current, ListType):
                current = current.element
            if not isinstance(current, RecordType):
                raise KeyError(f"path {path!r} descends into non-record type")
            current = current.field(part).dtype
        return current

    def is_nested_path(self, path: str) -> bool:
        """True if ``path`` traverses a list somewhere along the way.

        Nested paths are the ones whose columns are "long" in a flattened
        relational layout and "short" in the Parquet layout's parent columns.
        """
        if self.has_field(path):
            # Dotted field names of already-flattened schemas resolve directly.
            return isinstance(self.field(path).dtype, ListType)
        current: DataType = self
        parts = path.split(".")
        for index, part in enumerate(parts):
            while isinstance(current, ListType):
                current = current.element
            if not isinstance(current, RecordType):
                raise KeyError(f"path {path!r} descends into non-record type")
            current = current.field(part).dtype
            if isinstance(current, ListType) and index < len(parts) - 1:
                return True
        # A terminal list of atoms also counts as nested (it flattens).
        return isinstance(current, ListType)

    def nested_paths(self) -> list[str]:
        return [path for path in self.leaf_paths() if self.is_nested_path(path)]

    def non_nested_paths(self) -> list[str]:
        return [path for path in self.leaf_paths() if not self.is_nested_path(path)]

    def list_fields(self) -> list[str]:
        """Names of top-level fields whose type is a list."""
        return [f.name for f in self.fields if isinstance(f.dtype, ListType)]

    def flattened(self) -> "RecordType":
        """The relational schema obtained by flattening nested collections.

        Each leaf path becomes a flat field whose name is the dotted path, as
        in the paper's example where ``{"a":1,"b":4,"c":[4,6,9]}`` flattens
        into rows over columns ``a``, ``b`` and ``c``.
        """
        return RecordType([Field(path, atom) for path, atom in self.leaf_items()])

    def is_flat(self) -> bool:
        """True when every field is an atom (purely relational schema)."""
        return all(isinstance(f.dtype, AtomType) for f in self.fields)


def _leaf_items(prefix: str, dtype: DataType) -> Iterator[tuple[str, AtomType]]:
    if isinstance(dtype, AtomType):
        yield prefix, dtype
        return
    if isinstance(dtype, ListType):
        yield from _leaf_items(prefix, dtype.element)
        return
    if isinstance(dtype, RecordType):
        for field in dtype.fields:
            yield from _leaf_items(f"{prefix}.{field.name}", field.dtype)
        return
    raise TypeError(f"unsupported data type: {dtype!r}")


def flatten_record(record: dict, schema: RecordType) -> list[dict]:
    """Flatten one nested record into relational rows with dotted column names.

    Follows the flattening semantics described in Section 4 of the paper: a
    record whose field is a list of N elements produces N output rows, each
    duplicating the non-nested fields.  A record with several independent list
    fields produces the cross product of their flattenings.  Empty lists
    contribute a single row with ``None`` for the nested columns so that no
    parent data is silently dropped.
    """
    rows: list[dict] = [{}]
    for field in schema.fields:
        value = record.get(field.name)
        rows = _extend_rows(rows, field.name, field.dtype, value)
    return rows


def _extend_rows(rows: list[dict], prefix: str, dtype: DataType, value) -> list[dict]:
    if isinstance(dtype, AtomType):
        for row in rows:
            row[prefix] = value
        return rows
    if isinstance(dtype, RecordType):
        value = value or {}
        for field in dtype.fields:
            rows = _extend_rows(rows, f"{prefix}.{field.name}", field.dtype, value.get(field.name))
        return rows
    if isinstance(dtype, ListType):
        elements = value if value else [None]
        expanded: list[dict] = []
        for row in rows:
            for element in elements:
                new_row = dict(row)
                _fill_element(new_row, prefix, dtype.element, element)
                expanded.append(new_row)
        return expanded
    raise TypeError(f"unsupported data type: {dtype!r}")


def _fill_element(row: dict, prefix: str, dtype: DataType, element) -> None:
    if isinstance(dtype, AtomType):
        row[prefix] = element
        return
    if isinstance(dtype, RecordType):
        element = element or {}
        for field in dtype.fields:
            _fill_element(row, f"{prefix}.{field.name}", field.dtype, element.get(field.name))
        return
    if isinstance(dtype, ListType):
        # Nested list-of-list: flattenings nest recursively; keep the first
        # level only, deeper levels are rare in the paper's datasets.
        elements = element if element else [None]
        _fill_element(row, prefix, dtype.element, elements[0])
        return
    raise TypeError(f"unsupported data type: {dtype!r}")


class ColumnarResult:
    """Columnar query output backed by the pipeline's record batches.

    Returned in place of the row-dictionary list when a query runs with
    ``result_format="columnar"``: the batched executor hands its
    :class:`~repro.engine.batch.RecordBatch` stream to the caller directly, so
    ``rows_returned``-heavy queries skip the one-dict-per-row materialization
    at the pipeline exit entirely.  Consumers read whole columns
    (:meth:`column` / :meth:`numeric_column`) instead of iterating rows.

    Parity contract: :meth:`to_rows` reproduces the default row output *bit
    for bit* — same per-batch field sets, same row order, same value objects —
    which is what the parity fuzz harness asserts.  Execution, reports and
    cache accounting are identical in both formats; only the exit
    representation differs.
    """

    __slots__ = ("_batches",)

    def __init__(self, batches: Sequence["RecordBatch"]) -> None:
        self._batches = [batch for batch in batches if batch.row_count]

    @classmethod
    def from_rows(cls, rows: Sequence[dict]) -> "ColumnarResult":
        """Wrap row dictionaries (aggregate outputs, the row interpreter).

        The wrap is the inverse of :meth:`to_rows`: round-tripping reproduces
        the input rows exactly (aggregate outputs and interpreter rows are
        uniform in their field sets, so no ``None`` padding is introduced).
        """
        if not rows:
            return cls([])
        return cls([RecordBatch.from_rows(list(rows))])

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return sum(batch.row_count for batch in self._batches)

    def __len__(self) -> int:
        return self.row_count

    @property
    def batches(self) -> list["RecordBatch"]:
        """The underlying record batches (shared, not copied)."""
        return list(self._batches)

    def field_names(self) -> list[str]:
        """First-seen union of the batches' field names."""
        names: list[str] = []
        seen: set[str] = set()
        for batch in self._batches:
            for name in batch.columns:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        return names

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    def column(self, name: str) -> list:
        """One result column across all batches (missing fields read ``None``)."""
        values: list = []
        for batch in self._batches:
            values.extend(batch.column(name))
        return values

    def numeric_column(self, name: str) -> "np.ndarray | None":
        """A float64 view of one column, or ``None`` when not purely numeric.

        Mirrors :meth:`RecordBatch.numeric_view` (``None`` becomes NaN), so a
        caller can run further NumPy reductions on the result without ever
        materializing rows.  The returned array is read-only: a single-batch
        result may alias a cache layout's internal column array (batches flow
        out of warm scans by reference), and an in-place write through that
        alias would silently corrupt the cached data for every later query.
        """
        views = []
        for batch in self._batches:
            view = batch.numeric_view(name)
            if view is None:
                return None
            views.append(view)
        if not views:
            return None
        merged = views[0].view() if len(views) == 1 else np.concatenate(views)
        merged.flags.writeable = False
        return merged

    # ------------------------------------------------------------------
    # Row materialization (the parity exit)
    # ------------------------------------------------------------------
    def to_rows(self) -> list[dict]:
        """The exact row-dictionary output of ``result_format="rows"``."""
        return rows_from_batches(self._batches)

    def iter_rows(self) -> Iterator[dict]:
        for batch in self._batches:
            yield from batch.iter_rows()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ColumnarResult(rows={self.row_count}, fields={len(self.field_names())})"
