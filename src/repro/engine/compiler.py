"""Query "code generation": specializing expressions into Python closures.

Proteus generates LLVM code specialized to each query and data format; the
equivalent lever available to a pure-Python engine is to generate Python source
for each predicate / projection / aggregation and ``compile`` it once per
query, so that the per-row work is a single call into specialized bytecode
rather than a tree walk over expression objects.  The generated code is also
what the materializer stitches into its cache-creation path, mirroring the
paper's description of cache code being generated just-in-time.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.engine.expressions import (
    AggregateSpec,
    And,
    Arithmetic,
    Comparison,
    Expression,
    FieldRef,
    Literal,
    Not,
    Or,
    RangePredicate,
)


def compile_predicate(expr: Expression | None) -> Callable[[dict], bool]:
    """Compile a boolean expression into a fast ``row -> bool`` closure."""
    if expr is None:
        return lambda row: True
    source = f"lambda row: bool({_emit(expr)})"
    return eval(compile(source, "<recache-predicate>", "eval"), {})  # noqa: S307


def compile_value(expr: Expression) -> Callable[[dict], object]:
    """Compile a value expression into a ``row -> value`` closure."""
    source = f"lambda row: ({_emit(expr)})"
    return eval(compile(source, "<recache-expression>", "eval"), {})  # noqa: S307


def compile_projection(fields: Sequence[str]) -> Callable[[dict], dict]:
    """Compile a projection of ``fields`` into a ``row -> dict`` closure."""
    items = ", ".join(f"{field!r}: row.get({field!r})" for field in fields)
    source = f"lambda row: {{{items}}}"
    return eval(compile(source, "<recache-projection>", "eval"), {})  # noqa: S307


class CompiledAggregate:
    """Running state for one aggregate, specialized to its function."""

    def __init__(self, spec: AggregateSpec) -> None:
        self.spec = spec
        self._value_of = compile_value(spec.expr)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def update(self, row: dict) -> None:
        value = self._value_of(row)
        if value is None:
            return
        self._count += 1
        if self.spec.func in ("sum", "avg"):
            self._sum += value
        elif self.spec.func == "min":
            self._min = value if self._min is None else min(self._min, value)
        elif self.spec.func == "max":
            self._max = value if self._max is None else max(self._max, value)

    def result(self) -> object:
        func = self.spec.func
        if func == "count":
            return self._count
        if func == "sum":
            return self._sum
        if func == "avg":
            return self._sum / self._count if self._count else None
        if func == "min":
            return self._min
        return self._max


def compile_aggregates(specs: Sequence[AggregateSpec]) -> list[CompiledAggregate]:
    return [CompiledAggregate(spec) for spec in specs]


# ---------------------------------------------------------------------------
# Expression -> Python source
# ---------------------------------------------------------------------------
def _emit(expr: Expression) -> str:
    if isinstance(expr, FieldRef):
        return f"row.get({expr.path!r})"
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, RangePredicate):
        value = f"row.get({expr.field!r})"
        low_op = "<=" if expr.interval.low_inclusive else "<"
        high_op = "<=" if expr.interval.high_inclusive else "<"
        return (
            f"({value} is not None and {expr.interval.low!r} {low_op} {value} "
            f"and {value} {high_op} {expr.interval.high!r})"
        )
    if isinstance(expr, Comparison):
        left, right = _emit(expr.left), _emit(expr.right)
        # Guard only the operands that can actually be None at runtime
        # (literals cannot), mirroring the interpreter's null semantics.
        guards = [
            f"({emitted}) is not None"
            for operand, emitted in ((expr.left, left), (expr.right, right))
            if not isinstance(operand, Literal)
        ]
        comparison = f"({left}) {expr.op} ({right})"
        if guards:
            return "(" + " and ".join(guards + [comparison]) + ")"
        return f"({comparison})"
    if isinstance(expr, And):
        return "(" + " and ".join(_emit(child) for child in expr.children) + ")"
    if isinstance(expr, Or):
        return "(" + " or ".join(_emit(child) for child in expr.children) + ")"
    if isinstance(expr, Not):
        return f"(not {_emit(expr.child)})"
    if isinstance(expr, Arithmetic):
        return f"(({_emit(expr.left)}) {expr.op} ({_emit(expr.right)}))"
    raise TypeError(f"cannot compile expression of type {type(expr).__name__}")
