"""Query "code generation": specializing expressions into Python closures.

Proteus generates LLVM code specialized to each query and data format; the
equivalent lever available to a pure-Python engine is to generate Python source
for each predicate / projection / aggregation and ``compile`` it once per
query, so that the per-row work is a single call into specialized bytecode
rather than a tree walk over expression objects.  The generated code is also
what the materializer stitches into its cache-creation path, mirroring the
paper's description of cache code being generated just-in-time.

Two extra layers sit on top of the plain row compilers:

* **Closure caching** — compiled closures are memoized by their emitted
  Python source (an order-faithful structural fingerprint; the canonical
  signature would be unsafe because it sorts And/Or children and two
  conjunctions may rely on different short-circuit orders), so a workload
  that repeats structurally identical queries never re-``compile()`` the same
  predicate or aggregate accessor twice.
* **Batch compilation** — :func:`compile_batch_predicate` emits a NumPy mask
  evaluator for numeric comparisons/ranges and their conjunctions (``None``
  values become NaN, which fails every ordered comparison exactly like the
  interpreter's null semantics).  Expressions that cannot be vectorized —
  string comparisons, division (whose ``ZeroDivisionError`` semantics NumPy
  would silently change), non-numeric columns discovered at runtime — fall
  back to the compiled per-row closure applied over the batch.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

from repro.engine.batch import RecordBatch
from repro.engine.expressions import (
    AggregateSpec,
    And,
    Arithmetic,
    Comparison,
    Expression,
    FieldRef,
    Literal,
    Not,
    Or,
    RangePredicate,
)

# ---------------------------------------------------------------------------
# Closure cache
# ---------------------------------------------------------------------------
#: compiled closures keyed by "<kind>:<emitted source>".  The emitted source —
#: not the canonical signature — is the cache key because signatures sort
#: And/Or children: two conjunctions with the same signature but different
#: child order must NOT share a closure, or one query's short-circuit order
#: (e.g. a zero-guard before a division) would silently replace the other's.
_CLOSURE_CACHE: dict[str, object] = {}
_CLOSURE_LOCK = threading.Lock()
_CLOSURE_CACHE_LIMIT = 4096


def _cached_closure(key: str, build: Callable[[], object]):
    with _CLOSURE_LOCK:
        cached = _CLOSURE_CACHE.get(key)
    if cached is not None:
        return cached
    value = build()
    with _CLOSURE_LOCK:
        if len(_CLOSURE_CACHE) >= _CLOSURE_CACHE_LIMIT:
            # A workload of unbounded distinct predicates must not leak; the
            # cache is an optimization, so dropping it wholesale is safe.
            _CLOSURE_CACHE.clear()
        _CLOSURE_CACHE[key] = value
    return value


def compiled_closure_cache_size() -> int:
    """Number of memoized compiled closures (introspection for tests)."""
    with _CLOSURE_LOCK:
        return len(_CLOSURE_CACHE)


def clear_compiled_closure_cache() -> None:
    with _CLOSURE_LOCK:
        _CLOSURE_CACHE.clear()


# ---------------------------------------------------------------------------
# Row compilers
# ---------------------------------------------------------------------------
def compile_predicate(expr: Expression | None) -> Callable[[dict], bool]:
    """Compile a boolean expression into a fast ``row -> bool`` closure."""
    if expr is None:
        return lambda row: True
    emitted = _emit(expr)

    def build():
        source = f"lambda row: bool({emitted})"
        return eval(compile(source, "<recache-predicate>", "eval"), {})  # noqa: S307

    return _cached_closure(f"pred:{emitted}", build)


def compile_value(expr: Expression) -> Callable[[dict], object]:
    """Compile a value expression into a ``row -> value`` closure."""
    emitted = _emit(expr)

    def build():
        source = f"lambda row: ({emitted})"
        return eval(compile(source, "<recache-expression>", "eval"), {})  # noqa: S307

    return _cached_closure(f"value:{emitted}", build)


def compile_projection(fields: Sequence[str]) -> Callable[[dict], dict]:
    """Compile a projection of ``fields`` into a ``row -> dict`` closure."""
    fields = list(fields)

    def build():
        items = ", ".join(f"{field!r}: row.get({field!r})" for field in fields)
        source = f"lambda row: {{{items}}}"
        return eval(compile(source, "<recache-projection>", "eval"), {})  # noqa: S307

    return _cached_closure(f"proj:{tuple(fields)!r}", build)


class CompiledAggregate:
    """Running state for one aggregate, specialized to its function."""

    def __init__(self, spec: AggregateSpec) -> None:
        self.spec = spec
        self._value_of = compile_value(spec.expr)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def update(self, row: dict) -> None:
        value = self._value_of(row)
        if value is None:
            return
        self.update_value(value)

    def update_value(self, value) -> None:
        """Fold one non-``None`` value into the running state."""
        self._count += 1
        func = self.spec.func
        if func in ("sum", "avg"):
            self._sum += value
        elif func == "min":
            self._min = value if self._min is None else min(self._min, value)
        elif func == "max":
            self._max = value if self._max is None else max(self._max, value)

    def batch_values(self, batch: RecordBatch) -> list:
        """The aggregate's input values for every row of a batch.

        A plain field reference reads the column directly; compound
        expressions evaluate the compiled row closure over minimal row
        dictionaries restricted to the referenced fields.
        """
        expr = self.spec.expr
        if isinstance(expr, FieldRef):
            return batch.column(expr.path)
        fields = sorted(expr.referenced_fields())
        columns = [batch.column(name) for name in fields]
        value_of = self._value_of
        return [
            value_of({name: col[i] for name, col in zip(fields, columns)})
            for i in range(batch.row_count)
        ]

    def update_batch(self, batch: RecordBatch) -> None:
        """Fold a whole batch into the running state.

        Accumulation walks the column in row order with the same skip-``None``
        rule as :meth:`update`, so batched and interpreted execution produce
        bitwise-identical floating-point results.
        """
        values = self.batch_values(batch)
        func = self.spec.func
        if func in ("sum", "avg"):
            count = 0
            total = self._sum
            for value in values:
                if value is None:
                    continue
                count += 1
                total += value
            self._count += count
            self._sum = total
        elif func == "count":
            self._count += sum(1 for value in values if value is not None)
        elif func == "min":
            best = self._min
            count = 0
            for value in values:
                if value is None:
                    continue
                count += 1
                best = value if best is None else min(best, value)
            self._min = best
            self._count += count
        else:  # max
            best = self._max
            count = 0
            for value in values:
                if value is None:
                    continue
                count += 1
                best = value if best is None else max(best, value)
            self._max = best
            self._count += count

    def result(self) -> object:
        func = self.spec.func
        if func == "count":
            return self._count
        if func == "sum":
            return self._sum
        if func == "avg":
            return self._sum / self._count if self._count else None
        if func == "min":
            return self._min
        return self._max


def compile_aggregates(specs: Sequence[AggregateSpec]) -> list[CompiledAggregate]:
    return [CompiledAggregate(spec) for spec in specs]


# ---------------------------------------------------------------------------
# Batch (vectorized) predicate compilation
# ---------------------------------------------------------------------------
class _NotVectorizable(Exception):
    """The expression cannot be translated into NumPy mask arithmetic."""


_NUMPY_COMPARATORS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}

_NUMPY_ARITHMETIC = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    # "/" is intentionally absent: the interpreter raises ZeroDivisionError,
    # which NumPy would silently turn into inf/NaN.
}


def _vector_value(expr: Expression):
    """``batch -> ndarray | scalar`` evaluator, or raise :class:`_NotVectorizable`.

    The returned closure yields ``None`` at runtime when a referenced column
    turns out not to be numeric, signalling the caller to fall back.
    """
    if isinstance(expr, FieldRef):
        path = expr.path
        return lambda batch: batch.numeric_view(path)
    if isinstance(expr, Literal):
        value = expr.value
        if not isinstance(value, (int, float)):
            raise _NotVectorizable
        constant = float(value)
        return lambda batch: constant
    if isinstance(expr, Arithmetic):
        op = _NUMPY_ARITHMETIC.get(expr.op)
        if op is None:
            raise _NotVectorizable
        left = _vector_value(expr.left)
        right = _vector_value(expr.right)

        def value(batch: RecordBatch):
            lhs = left(batch)
            rhs = right(batch)
            if lhs is None or rhs is None:
                return None
            # NaN propagation mirrors the interpreter's None propagation.
            return op(lhs, rhs)

        return value
    raise _NotVectorizable


def _vector_validity(expr: Expression):
    """``batch -> bool ndarray`` of rows where every leaf field of ``expr``
    is non-``None``, or ``None`` when the operand can never be null.

    This is exactly the guard set the row compiler emits (see :func:`_emit`):
    the interpreter guards a comparison operand through its *leaf fields*, so
    the vectorized mask ANDs the per-column validity views of those leaves.
    Layouts with striped definition levels pre-seed the views from
    ``def == max_def`` arrays, so no Python values are touched.
    """
    if isinstance(expr, Literal):
        return None
    paths = sorted(expr.referenced_fields())
    if not paths:
        return None

    def validity(batch: RecordBatch):
        combined = None
        for path in paths:
            mask = batch.validity_view(path)
            combined = mask if combined is None else combined & mask
        return combined

    return validity


def _vector_mask(expr: Expression):
    """``batch -> bool ndarray | None`` evaluator, or raise :class:`_NotVectorizable`."""
    if isinstance(expr, RangePredicate):
        field = expr.field
        interval = expr.interval

        def mask(batch: RecordBatch):
            array = batch.numeric_view(field)
            if array is None:
                return None
            low = array >= interval.low if interval.low_inclusive else array > interval.low
            high = array <= interval.high if interval.high_inclusive else array < interval.high
            return low & high

        return mask
    if isinstance(expr, Comparison):
        op = _NUMPY_COMPARATORS[expr.op]
        left = _vector_value(expr.left)
        right = _vector_value(expr.right)
        # Ordered comparisons against NaN are already False; equality needs an
        # explicit validity mask (None rows must never compare equal).  "!="
        # cannot use an isnan guard — the float view cannot distinguish a
        # genuine NaN value (where the interpreter answers True) from a
        # None-became-NaN (where it must answer False) — so it ANDs the
        # per-column ``value is not None`` validity views instead, which keep
        # genuine NaNs valid.  Object-dtype (string) columns still return a
        # ``None`` numeric view at runtime and take the per-row fallback.
        needs_nan_guard = expr.op == "=="
        guard_left = not isinstance(expr.left, Literal)
        guard_right = not isinstance(expr.right, Literal)
        validity_left = _vector_validity(expr.left) if expr.op == "!=" else None
        validity_right = _vector_validity(expr.right) if expr.op == "!=" else None

        def mask(batch: RecordBatch):
            lhs = left(batch)
            rhs = right(batch)
            if lhs is None or rhs is None:
                return None
            result = op(lhs, rhs)
            if needs_nan_guard:
                if guard_left and isinstance(lhs, np.ndarray):
                    result = result & ~np.isnan(lhs)
                if guard_right and isinstance(rhs, np.ndarray):
                    result = result & ~np.isnan(rhs)
            if validity_left is not None:
                result = result & validity_left(batch)
            if validity_right is not None:
                result = result & validity_right(batch)
            if not isinstance(result, np.ndarray):
                # Two literals: broadcast the constant verdict.
                result = np.full(batch.row_count, bool(result))
            return result

        return mask
    if isinstance(expr, (And, Or)):
        children = [_vector_mask(child) for child in expr.children]
        combine = np.logical_and if isinstance(expr, And) else np.logical_or

        def mask(batch: RecordBatch):
            combined = None
            for child in children:
                child_mask = child(batch)
                if child_mask is None:
                    return None
                combined = child_mask if combined is None else combine(combined, child_mask)
            return combined

        return mask
    if isinstance(expr, Not):
        child = _vector_mask(expr.child)

        def mask(batch: RecordBatch):
            child_mask = child(batch)
            if child_mask is None:
                return None
            return ~child_mask

        return mask
    raise _NotVectorizable


def compile_batch_predicate(expr: Expression | None) -> Callable[[RecordBatch], np.ndarray]:
    """Compile a predicate into a ``batch -> bool ndarray`` mask evaluator.

    Numeric comparisons/ranges and their boolean combinations evaluate as
    NumPy mask expressions; anything else (or a batch whose columns turn out
    non-numeric) evaluates the compiled per-row closure over the batch.
    """
    if expr is None:
        return lambda batch: np.ones(batch.row_count, dtype=bool)
    # The emitted source is an order-faithful structural fingerprint (unlike
    # the signature, which sorts And/Or children); the vectorized evaluator is
    # built from the same structure, so it is a safe cache key for both parts.
    emitted = _emit(expr)

    def build():
        try:
            vector = _vector_mask(expr)
        except _NotVectorizable:
            vector = None
        row_predicate = compile_predicate(expr)
        fields = sorted(expr.referenced_fields())

        def evaluate(batch: RecordBatch) -> np.ndarray:
            if vector is not None:
                mask = vector(batch)
                if mask is not None:
                    return mask
            pairs = [(name, batch.column(name)) for name in fields]
            count = batch.row_count
            out = np.empty(count, dtype=bool)
            # One preallocated row dict, rebound in place per row: the
            # compiled closure only reads it synchronously, so reuse is safe
            # and saves a dict allocation per row.
            row = dict.fromkeys(fields)
            for i in range(count):
                for name, col in pairs:  # rowwise-fallback: non-vectorizable predicates interpret per row — the audited parity fallback
                    row[name] = col[i]
                out[i] = row_predicate(row)
            return out

        return evaluate

    return _cached_closure(f"batchpred:{emitted}", build)


# ---------------------------------------------------------------------------
# Expression -> Python source
# ---------------------------------------------------------------------------
def _emit(expr: Expression) -> str:
    if isinstance(expr, FieldRef):
        return f"row.get({expr.path!r})"
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, RangePredicate):
        value = f"row.get({expr.field!r})"
        low_op = "<=" if expr.interval.low_inclusive else "<"
        high_op = "<=" if expr.interval.high_inclusive else "<"
        return (
            f"({value} is not None and {expr.interval.low!r} {low_op} {value} "
            f"and {value} {high_op} {expr.interval.high!r})"
        )
    if isinstance(expr, Comparison):
        left, right = _emit(expr.left), _emit(expr.right)
        # Guard only the operands that can actually be None at runtime
        # (literals cannot), mirroring the interpreter's null semantics.  An
        # arithmetic operand is guarded through its *leaf fields*: evaluating
        # the whole operand inside the guard would already raise TypeError on
        # None, whereas the interpreter propagates None and compares False —
        # which is also what the NaN arithmetic of the batched pipeline does.
        guards: list[str] = []
        for operand, emitted in ((expr.left, left), (expr.right, right)):
            if isinstance(operand, Literal):
                continue
            if isinstance(operand, (FieldRef, Arithmetic)):
                for path in sorted(operand.referenced_fields()):
                    guard = f"row.get({path!r}) is not None"
                    if guard not in guards:
                        guards.append(guard)
            else:
                # Boolean-valued operands (predicates) never evaluate to None;
                # the cheap whole-expression guard keeps the old behaviour.
                guards.append(f"({emitted}) is not None")
        comparison = f"({left}) {expr.op} ({right})"
        if guards:
            return "(" + " and ".join(guards + [comparison]) + ")"
        return f"({comparison})"
    if isinstance(expr, And):
        return "(" + " and ".join(_emit(child) for child in expr.children) + ")"
    if isinstance(expr, Or):
        return "(" + " or ".join(_emit(child) for child in expr.children) + ")"
    if isinstance(expr, Not):
        return f"(not {_emit(expr.child)})"
    if isinstance(expr, Arithmetic):
        return f"(({_emit(expr.left)}) {expr.op} ({_emit(expr.right)}))"
    raise TypeError(f"cannot compile expression of type {type(expr).__name__}")
