"""Runtime calibration of the per-value data-access cost.

The layout selector needs each cache scan split into a data-access cost ``D``
(time spent loading values from the cache) and a computational cost ``C``
(branches, level interpretation, predicate evaluation).  Rather than timing
every value — which would add exactly the monitoring overhead the paper warns
about — the executor measures the total scan time and estimates ``D`` as
``values_accessed * per_value_cost``, where the per-value cost is calibrated
once per process by timing a plain list traversal.  ``C`` is the remainder.
"""

from __future__ import annotations

import time

_CALIBRATION_ROWS = 20_000
_CALIBRATION_COLUMNS = 4
_per_value_seconds: float | None = None


def per_value_access_seconds() -> float:
    """Seconds needed to read one value out of an in-memory Python list.

    Measured lazily on first use and cached for the lifetime of the process.
    """
    global _per_value_seconds
    if _per_value_seconds is None:
        _per_value_seconds = _measure()
    return _per_value_seconds


def estimate_data_access_time(values_accessed: int) -> float:
    """Estimated time spent purely loading ``values_accessed`` cache values."""
    if values_accessed <= 0:
        return 0.0
    return values_accessed * per_value_access_seconds()


def split_scan_cost(total_seconds: float, values_accessed: int) -> tuple[float, float]:
    """Split a measured cache-scan time into ``(data_cost, compute_cost)``.

    The data cost is capped at the measured total so the compute cost is never
    negative (calibration noise on very small scans).
    """
    data_cost = min(total_seconds, estimate_data_access_time(values_accessed))
    return data_cost, max(0.0, total_seconds - data_cost)


def override_per_value_seconds(value: float | None) -> None:
    """Force the calibration constant (used by deterministic unit tests)."""
    global _per_value_seconds
    _per_value_seconds = value


def _measure() -> float:  # rowwise-fallback: deliberately times the row-shaped scan loop to calibrate the cost model
    """Time a representative columnar cache scan (zip columns, build row dicts).

    Using a scan-shaped loop rather than a bare list traversal keeps the
    calibrated constant close to the true per-value cost of
    :meth:`repro.layouts.columnar.ColumnarLayout.scan`, which is what the cost
    model's ``D`` is meant to approximate.
    """
    names = [f"c{i}" for i in range(_CALIBRATION_COLUMNS)]
    columns = [list(range(_CALIBRATION_ROWS)) for _ in range(_CALIBRATION_COLUMNS)]
    sink = 0
    started = time.perf_counter()
    for values in zip(*columns):
        row = dict(zip(names, values))
        sink += len(row)
    elapsed = time.perf_counter() - started
    # Keep the optimizer from discarding the loop and guard against a zero
    # reading on very coarse clocks.
    if sink < 0:  # pragma: no cover - never true, defeats dead-code elimination
        raise AssertionError
    return max(elapsed / (_CALIBRATION_ROWS * _CALIBRATION_COLUMNS), 1e-9)
