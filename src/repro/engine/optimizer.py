"""Plan construction and cache-aware rewriting.

The optimizer turns a declarative :class:`~repro.engine.query.Query` into a
logical plan and, with ReCache's help, rewrites it (Section 3.2-3.3):

* every select operator over a raw source gets a *materializer* parent so that
  its output can be cached (Figure 3a),
* when ReCache already holds an exactly matching cache, the select-over-scan
  subtree is replaced with a scan over the cache (Figure 3b),
* when a *subsuming* cache exists (its range predicate covers the query's),
  the raw scan is replaced with a cache scan and the select is kept on top as
  a residual filter (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache_manager import ReCache
from repro.core.sharded_cache import ShardedReCache
from repro.engine.algebra import (
    AggregateNode,
    CacheScanNode,
    JoinNode,
    MaterializeNode,
    PlanNode,
    ScanNode,
    SelectNode,
)
from repro.engine.expressions import referenced_fields
from repro.engine.query import Query
from repro.formats.datafile import DataSourceCatalog


@dataclass
class PlanInfo:
    """Book-keeping produced while planning one query."""

    plan: PlanNode
    #: per-source subplan feeding the join/aggregate stage
    table_plans: dict[str, PlanNode] = field(default_factory=dict)
    #: per-source fields that must be available for this query
    table_fields: dict[str, list[str]] = field(default_factory=dict)
    exact_hits: int = 0
    subsumption_hits: int = 0
    misses: int = 0


def required_fields(query: Query, catalog: DataSourceCatalog, source: str) -> list[str]:
    """The attribute paths of ``source`` that the query touches.

    Includes the source's predicate fields, its join keys, and whichever
    aggregate / group-by fields belong to the source's schema.  The result is
    what the materializer caches and what a cache must provide to be reusable.
    """
    table = query.table(source)
    schema_paths = set(catalog.get(source).flattened_schema.field_names())
    fields: set[str] = set()
    if table.predicate is not None:
        fields |= table.predicate.referenced_fields()
    for join in query.joins:
        if join.left_source == source:
            fields.add(join.left_key)
        if join.right_source == source:
            fields.add(join.right_key)
    for path in referenced_fields(query.aggregates):
        if path in schema_paths:
            fields.add(path)
    for path in query.group_by:
        if path in schema_paths:
            fields.add(path)
    unknown = fields - schema_paths
    if unknown:
        raise KeyError(f"query references unknown fields of {source!r}: {sorted(unknown)}")
    return sorted(fields)


def build_plan(
    query: Query,
    catalog: DataSourceCatalog,
    recache: ReCache | ShardedReCache | None,
    breaker=None,
) -> PlanInfo:
    """Build the cache-aware logical plan for ``query``.

    ``breaker`` is an optional
    :class:`~repro.core.circuit_breaker.SourceCircuitBreaker`: tables whose
    source breaker is open are planned as plain raw scans — no cache lookup
    and no materializer — so a repeatedly faulting source stops paying
    admission overhead (and stops poisoning the cache) until its cooldown
    elapses.
    """
    info = PlanInfo(plan=ScanNode(source="<placeholder>"))

    for table in query.tables:
        fields = required_fields(query, catalog, table.source)
        info.table_fields[table.source] = fields
        if breaker is not None and breaker.is_open(table.source):
            node = SelectNode(
                child=ScanNode(source=table.source, fields=fields),
                predicate=table.predicate,
            )
        else:
            node = _plan_table(table.source, table.predicate, fields, recache, info)
        info.table_plans[table.source] = node

    plan = _join_tables(query, info)
    if query.aggregates or query.group_by:
        plan = AggregateNode(child=plan, aggregates=list(query.aggregates), group_by=list(query.group_by))
    info.plan = plan
    return info


def _plan_table(
    source: str,
    predicate,
    fields: list[str],
    recache: ReCache | ShardedReCache | None,
    info: PlanInfo,
) -> PlanNode:
    scan = ScanNode(source=source, fields=fields)
    if recache is None or not recache.config.caching_enabled:
        return SelectNode(child=scan, predicate=predicate)

    match = recache.lookup(source, predicate, fields)
    if match is not None:
        if match.exact:
            info.exact_hits += 1
        else:
            info.subsumption_hits += 1
        return CacheScanNode(
            entry=match.entry,
            fields=fields,
            residual_predicate=predicate,
            exact=match.exact,
            lookup_time=match.lookup_time,
        )

    info.misses += 1
    select = SelectNode(child=scan, predicate=predicate)
    return MaterializeNode(child=select, source=source, predicate=predicate, fields=fields)


def _join_tables(query: Query, info: PlanInfo) -> PlanNode:
    """Chain the per-table plans into a left-deep join tree."""
    if len(query.tables) == 1:
        return info.table_plans[query.tables[0].source]

    joined_sources = {query.tables[0].source}
    plan = info.table_plans[query.tables[0].source]
    pending = list(query.joins)

    while pending:
        progressed = False
        for join in list(pending):
            if join.left_source in joined_sources and join.right_source not in joined_sources:
                plan = JoinNode(
                    left=plan,
                    right=info.table_plans[join.right_source],
                    left_key=join.left_key,
                    right_key=join.right_key,
                )
                joined_sources.add(join.right_source)
            elif join.right_source in joined_sources and join.left_source not in joined_sources:
                plan = JoinNode(
                    left=plan,
                    right=info.table_plans[join.left_source],
                    left_key=join.right_key,
                    right_key=join.left_key,
                )
                joined_sources.add(join.left_source)
            elif join.left_source in joined_sources and join.right_source in joined_sources:
                pass  # both sides already joined; the clause is redundant
            else:
                continue
            pending.remove(join)
            progressed = True
        if not progressed:
            raise ValueError("join graph is not connected to the first table")

    missing = [t.source for t in query.tables if t.source not in joined_sources]
    if missing:
        raise ValueError(f"tables {missing} are not connected by any join clause")
    return plan
