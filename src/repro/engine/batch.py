"""Record batches: the unit of the vectorized execution pipeline.

A :class:`RecordBatch` is a columnar struct-of-lists chunk of flattened rows:
one Python list per column plus optional record-level side information.  Scans
(format plugins and cache layouts) produce batches of a configurable size, the
batched operators consume and produce them, and per-column ``float64`` NumPy
views are built lazily so numeric predicates evaluate as vectorized masks
instead of per-row closure calls.

The record-level side information exists because ReCache's semantics are
record-granular even though execution is row-granular:

* ``record_row_counts`` — how many flattened rows each original record
  contributed (nested JSON records flatten into several rows).  Needed for the
  nested algebra's record-level dedup semantics and for admission sampling,
  which counts *records*, not rows.
* ``records`` — the raw caching payload per record (the raw text line for CSV,
  the parsed object for JSON) that the materializer parses into complete
  cached tuples for the records that satisfy the predicate.
* ``record_bytes`` — approximate raw size per record, feeding the admission
  controller's total-record extrapolation.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


def numeric_column_array(values) -> np.ndarray | None:
    """A float64 array for a column of numbers/``None``, else ``None``.

    Only genuinely numeric values qualify: NumPy would happily parse digit
    *strings* into floats, silently succeeding where the row interpreter's
    comparison raises TypeError.  ``None`` becomes NaN, which fails every
    ordered comparison exactly like the interpreter's null semantics.  The
    float64 coercion means vectorized predicates treat a genuine NaN data
    value as a null and integers beyond 2**53 lose precision; the repo's
    CSV/JSON workloads produce neither.
    """
    if not all(
        value_type is float or value_type is int or value_type is type(None) or value_type is bool
        for value_type in map(type, values)
    ):
        return None
    return np.array([np.nan if value is None else value for value in values], dtype=np.float64)


def object_validity_mask(values) -> np.ndarray:
    """A boolean array marking the non-``None`` positions of a value list.

    This is exactly the interpreter's aggregate-input rule (``value is not
    None``): unlike an ``isnan`` test on a float64 view, it keeps a genuine
    NaN data value valid, so the NumPy group-by's skip-null behaviour matches
    the row interpreter value for value.
    """
    return np.fromiter((value is not None for value in values), dtype=bool, count=len(values))  # rowwise-fallback: None-validity of object columns is a per-value identity test by definition


def approx_record_bytes(record: dict) -> int:
    """Rough raw-data size of one parsed JSON record (admission extrapolation)."""
    total = 0
    for value in record.values():
        if isinstance(value, list):
            total += 24 * max(1, len(value))
        elif isinstance(value, str):
            total += len(value)
        else:
            total += 8
    return max(16, total)


class RecordBatch:
    """A columnar chunk of flattened rows flowing through the batched executor."""

    __slots__ = (
        "columns",
        "record_row_counts",
        "records",
        "record_bytes",
        "_row_count",
        "_numeric",
        "_validity",
        "_record_offsets",
    )

    def __init__(
        self,
        columns: dict[str, list],
        row_count: int | None = None,
        record_row_counts: list[int] | None = None,
        records: list | None = None,
        record_bytes: list[int] | None = None,
    ) -> None:
        if row_count is None:
            row_count = len(next(iter(columns.values()))) if columns else 0
        lengths = {len(col) for col in columns.values()}
        if lengths and lengths != {row_count}:
            raise ValueError(f"ragged batch columns: lengths {sorted(lengths)} != {row_count}")
        self.columns = columns
        self._row_count = row_count
        self.record_row_counts = record_row_counts
        self.records = records
        self.record_bytes = record_bytes
        #: lazily built float64 views per column (None = not numeric)
        self._numeric: dict[str, np.ndarray | None] = {}
        #: lazily built ``value is not None`` masks per column (layouts with
        #: striped definition levels pre-seed these without touching values)
        self._validity: dict[str, np.ndarray] = {}
        #: lazily built per-record row offsets (len == record_count + 1)
        self._record_offsets: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[dict], fields: Sequence[str] | None = None) -> "RecordBatch":
        """Build a batch from row dictionaries (missing fields become ``None``)."""
        if fields is None:
            fields = list(rows[0].keys()) if rows else []
        columns: dict[str, list] = {name: [] for name in fields}
        for row in rows:
            for name in fields:
                columns[name].append(row.get(name))
        return cls(columns, row_count=len(rows))

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def record_count(self) -> int:
        """Number of original records in the batch (== rows for flat data)."""
        if self.record_row_counts is not None:
            return len(self.record_row_counts)
        return self._row_count

    @property
    def total_record_bytes(self) -> int:
        return sum(self.record_bytes) if self.record_bytes else 0

    def field_names(self) -> list[str]:
        return list(self.columns)

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> list:
        """One column's values; a missing column reads as all-``None``
        (mirroring the row interpreter's ``row.get`` semantics)."""
        if name in self.columns:
            return self.columns[name]
        return [None] * self._row_count

    def numeric_view(self, name: str) -> np.ndarray | None:  # returns: flat-view
        """A cached float64 view of one column (see :func:`numeric_column_array`).

        Returns ``None`` when the column holds non-numeric values; vectorized
        predicates then fall back to the compiled per-row closure.
        """
        if name not in self._numeric:
            self._numeric[name] = numeric_column_array(self.column(name))
        return self._numeric[name]

    def set_numeric_view(self, name: str, array: np.ndarray) -> None:
        """Pre-seed a numeric view (layouts share their cached column arrays)."""
        self._numeric[name] = array

    def validity_view(self, name: str) -> np.ndarray:
        """A cached ``value is not None`` mask for one column.

        Striped layouts pre-seed this from definition-level arrays
        (``def == max_def``, the same predicate by the striping invariant),
        so vectorized ``!=`` and existence tests never walk Python values.
        """
        if name not in self._validity:
            self._validity[name] = object_validity_mask(self.column(name))
        return self._validity[name]

    def set_validity_view(self, name: str, array: np.ndarray) -> None:
        """Pre-seed a validity mask (layouts derive these from def levels)."""
        self._validity[name] = array

    # ------------------------------------------------------------------
    # Record-granular views
    # ------------------------------------------------------------------
    def record_ids(self) -> np.ndarray:
        """Per-row ordinal of the originating record within this batch."""
        if self.record_row_counts is None:
            return np.arange(self._row_count)
        return np.repeat(np.arange(len(self.record_row_counts)), self.record_row_counts)

    def record_offsets(self) -> np.ndarray:
        """Row offsets per record: ``offsets[i]:offsets[i+1]`` is record i.

        Length is ``record_count + 1``; for flat batches every row is its
        own record, so the offsets are simply ``0..row_count``.
        """
        if self._record_offsets is None:
            if self.record_row_counts is None:
                self._record_offsets = np.arange(self._row_count + 1, dtype=np.int64)
            else:
                offsets = np.empty(len(self.record_row_counts) + 1, dtype=np.int64)
                offsets[0] = 0
                np.cumsum(np.asarray(self.record_row_counts, dtype=np.int64), out=offsets[1:])
                self._record_offsets = offsets
        return self._record_offsets

    def record_any(self, mask: np.ndarray) -> np.ndarray:
        """Per-record OR of a row mask — the entry→record granularity
        reduction of the nested-predicate vectorizer.

        ``np.logical_or.reduceat`` over the record row offsets answers "did
        any flattened row of this record satisfy the mask", bit-identical to
        the interpreter's per-record existence answer.
        """
        mask = np.asarray(mask, dtype=bool)
        if self.record_row_counts is None:
            return mask
        offsets = self.record_offsets()
        record_count = len(offsets) - 1
        if record_count == 0 or mask.size == 0:
            return np.zeros(record_count, dtype=bool)
        counts = offsets[1:] - offsets[:-1]
        if counts.min() < 1:
            # Degenerate zero-row records would make reduceat read into the
            # next segment; reduce through explicit record ids instead.
            out = np.zeros(record_count, dtype=bool)
            out[np.unique(self.record_ids()[mask])] = True
            return out
        return np.logical_or.reduceat(mask, offsets[:-1])

    def records_with_true(self, mask: np.ndarray) -> np.ndarray:
        """Sorted in-batch ordinals of records with at least one True row."""
        return np.nonzero(self.record_any(mask))[0]

    def first_true_per_record(self, mask: np.ndarray) -> np.ndarray:
        """Row indexes of the first True row of each record (record dedup)."""
        true_rows = np.nonzero(np.asarray(mask, dtype=bool))[0]
        if len(true_rows) == 0 or self.record_row_counts is None:
            # Flat data: every row is its own record.
            return true_rows
        ids = self.record_ids()[true_rows]
        _, first_positions = np.unique(ids, return_index=True)
        return true_rows[first_positions]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def take(self, indexes) -> "RecordBatch":
        """A new batch holding the rows at ``indexes`` (record info dropped)."""
        index_list = indexes.tolist() if isinstance(indexes, np.ndarray) else list(indexes)  # rowwise-fallback: take() gathers object columns through Python; numeric columns regather via the float64 views below
        columns = {
            name: [col[i] for i in index_list] for name, col in self.columns.items()  # rowwise-fallback: object-column gather (see take() note above)
        }
        taken = RecordBatch(columns, row_count=len(index_list))
        for name, array in self._numeric.items():
            if array is not None:
                taken._numeric[name] = array[index_list]
        for name, array in self._validity.items():
            taken._validity[name] = array[index_list]
        return taken

    def project(self, fields: Sequence[str]) -> "RecordBatch":
        """Restrict the batch to ``fields`` (missing fields become ``None``)."""
        projected = RecordBatch(
            {name: self.column(name) for name in fields}, row_count=self._row_count
        )
        for name in fields:
            if self._numeric.get(name) is not None:
                projected._numeric[name] = self._numeric[name]
            if name in self._validity:
                projected._validity[name] = self._validity[name]
        return projected

    def slice_records(self, start: int, stop: int) -> "RecordBatch":
        """The sub-batch holding records ``[start, stop)`` (sampling split)."""
        if self.record_row_counts is None:
            row_start, row_stop = start, stop
            counts = None
        else:
            offsets = self.record_offsets()
            row_start, row_stop = int(offsets[start]), int(offsets[stop])
            counts = self.record_row_counts[start:stop]
        sliced = RecordBatch(
            {name: col[row_start:row_stop] for name, col in self.columns.items()},
            row_count=row_stop - row_start,
            record_row_counts=counts,
            records=self.records[start:stop] if self.records is not None else None,
            record_bytes=self.record_bytes[start:stop] if self.record_bytes is not None else None,
        )
        for name, array in self._numeric.items():
            if array is not None:
                sliced._numeric[name] = array[row_start:row_stop]
        for name, array in self._validity.items():
            sliced._validity[name] = array[row_start:row_stop]
        return sliced

    # ------------------------------------------------------------------
    # Row materialization (pipeline exit points)
    # ------------------------------------------------------------------
    def to_rows(self, fields: Sequence[str] | None = None) -> list[dict]:
        wanted = list(fields) if fields is not None else list(self.columns)
        if not wanted:
            return [{} for _ in range(self._row_count)]
        selected = [self.column(name) for name in wanted]
        return [dict(zip(wanted, values)) for values in zip(*selected)]

    def iter_rows(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        wanted = list(fields) if fields is not None else list(self.columns)
        selected = [self.column(name) for name in wanted]
        for i in range(self._row_count):
            yield {name: col[i] for name, col in zip(wanted, selected)}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RecordBatch(rows={self._row_count}, fields={len(self.columns)})"


def rows_from_batches(batches: Sequence[RecordBatch]) -> list[dict]:  # rowwise-fallback: the audited rows exit — parity-tested against the interpreter
    """Materialize a batch stream into the row dictionaries reports carry."""
    rows: list[dict] = []
    for batch in batches:
        rows.extend(batch.to_rows())
    return rows


def batches_from_row_iter(
    row_iter, fields: Sequence[str] | None, batch_size: int
) -> Iterator[RecordBatch]:
    """Chunk a row-dictionary iterator into batches of ``batch_size`` rows."""
    buffer: list[dict] = []
    for row in row_iter:
        buffer.append(row)
        if len(buffer) >= batch_size:
            yield RecordBatch.from_rows(buffer, fields)
            buffer = []
    if buffer:
        yield RecordBatch.from_rows(buffer, fields)


def concat_batches(batches: Sequence[RecordBatch]) -> RecordBatch:
    """Concatenate batches into one (field set is the first-seen union).

    Float64 views that every input batch has *already* built (or had
    pre-seeded by a layout) for a column are concatenated along with it, so
    consumers like the factorized join probe slice one NumPy array instead
    of re-converting the merged Python list; views are never built here —
    a column any batch has not converted stays lazy.
    """
    if len(batches) == 1:
        return batches[0]
    fields: list[str] = []
    seen: set[str] = set()
    for batch in batches:
        for name in batch.columns:
            if name not in seen:
                seen.add(name)
                fields.append(name)
    columns: dict[str, list] = {name: [] for name in fields}
    total = 0
    for batch in batches:
        for name in fields:
            columns[name].extend(batch.column(name))
        total += batch.row_count
    merged = RecordBatch(columns, row_count=total)
    for name in fields:
        views = [
            batch._numeric.get(name) if name in batch.columns else None
            for batch in batches
        ]
        if all(view is not None for view in views):
            merged._numeric[name] = np.concatenate(views)
        masks = [
            batch._validity.get(name) if name in batch.columns else None
            for batch in batches
        ]
        if all(mask is not None for mask in masks):
            merged._validity[name] = np.concatenate(masks)
    return merged
