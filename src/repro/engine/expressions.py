"""Expression language used by selection, projection and aggregation operators.

Expressions evaluate over *flattened* rows: plain dictionaries whose keys are
dotted attribute paths (``"o_orderkey"``, ``"lineitems.l_quantity"``).  Each
expression exposes

* :meth:`Expression.evaluate` — compute its value on a row,
* :meth:`Expression.referenced_fields` — the set of attribute paths it reads
  (the workload-monitoring input for ReCache's layout selector),
* :meth:`Expression.signature` — a canonical string used for structural
  equality, which is what cache matching compares ("same operation, same
  arguments", Section 3.2).

Range predicates get a dedicated node (:class:`RangePredicate`) because they
are the unit of ReCache's query-subsumption support (Section 3.3): a cached
range predicate subsumes a new one when its interval fully covers it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence


class Expression:
    """Base class of all expression AST nodes."""

    def evaluate(self, row: Mapping) -> object:
        raise NotImplementedError

    def referenced_fields(self) -> frozenset[str]:
        raise NotImplementedError

    def signature(self) -> str:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return self.signature()


class FieldRef(Expression):
    """Reference to an attribute by dotted path."""

    def __init__(self, path: str) -> None:
        if not path:
            raise ValueError("field path must be non-empty")
        self.path = path

    def evaluate(self, row: Mapping) -> object:
        if self.path in row:
            return row[self.path]
        # Fall back to traversing a nested dict (rows that were not flattened).
        current: object = row
        for part in self.path.split("."):
            if not isinstance(current, Mapping) or part not in current:
                raise KeyError(f"row has no attribute {self.path!r}")
            current = current[part]
        return current

    def referenced_fields(self) -> frozenset[str]:
        return frozenset({self.path})

    def signature(self) -> str:
        return f"${self.path}"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: object) -> None:
        self.value = value

    def evaluate(self, row: Mapping) -> object:
        return self.value

    def referenced_fields(self) -> frozenset[str]:
        return frozenset()

    def signature(self) -> str:
        if isinstance(self.value, float):
            return f"lit({self.value!r})"
        return f"lit({self.value!r})"


_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Comparison(Expression):
    """A binary comparison between two expressions."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARATORS:
            raise ValueError(f"unsupported comparison operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        return _COMPARATORS[self.op](left, right)

    def referenced_fields(self) -> frozenset[str]:
        return self.left.referenced_fields() | self.right.referenced_fields()

    def signature(self) -> str:
        return f"({self.left.signature()}{self.op}{self.right.signature()})"


class And(Expression):
    """Conjunction of one or more predicates."""

    def __init__(self, children: Sequence[Expression]) -> None:
        if not children:
            raise ValueError("And requires at least one child")
        self.children = list(children)

    def evaluate(self, row: Mapping) -> bool:
        return all(child.evaluate(row) for child in self.children)

    def referenced_fields(self) -> frozenset[str]:
        fields: frozenset[str] = frozenset()
        for child in self.children:
            fields |= child.referenced_fields()
        return fields

    def signature(self) -> str:
        inner = "&".join(sorted(child.signature() for child in self.children))
        return f"and({inner})"


class Or(Expression):
    """Disjunction of one or more predicates."""

    def __init__(self, children: Sequence[Expression]) -> None:
        if not children:
            raise ValueError("Or requires at least one child")
        self.children = list(children)

    def evaluate(self, row: Mapping) -> bool:
        return any(child.evaluate(row) for child in self.children)

    def referenced_fields(self) -> frozenset[str]:
        fields: frozenset[str] = frozenset()
        for child in self.children:
            fields |= child.referenced_fields()
        return fields

    def signature(self) -> str:
        inner = "|".join(sorted(child.signature() for child in self.children))
        return f"or({inner})"


class Not(Expression):
    """Negation of a predicate."""

    def __init__(self, child: Expression) -> None:
        self.child = child

    def evaluate(self, row: Mapping) -> bool:
        return not self.child.evaluate(row)

    def referenced_fields(self) -> frozenset[str]:
        return self.child.referenced_fields()

    def signature(self) -> str:
        return f"not({self.child.signature()})"


_ARITHMETIC: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Arithmetic(Expression):
    """A binary arithmetic expression over numeric operands."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITHMETIC:
            raise ValueError(f"unsupported arithmetic operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping) -> object:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        return _ARITHMETIC[self.op](left, right)

    def referenced_fields(self) -> frozenset[str]:
        return self.left.referenced_fields() | self.right.referenced_fields()

    def signature(self) -> str:
        return f"({self.left.signature()}{self.op}{self.right.signature()})"


@dataclass(frozen=True)
class Interval:
    """A closed/open numeric interval, used for subsumption reasoning."""

    low: float
    high: float
    low_inclusive: bool = True
    high_inclusive: bool = True

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"interval low ({self.low}) exceeds high ({self.high})")

    def contains_value(self, value: float) -> bool:
        if value is None:
            return False
        above = value > self.low or (self.low_inclusive and value == self.low)
        below = value < self.high or (self.high_inclusive and value == self.high)
        return above and below

    def covers(self, other: "Interval") -> bool:
        """True when every value satisfying ``other`` also satisfies ``self``."""
        low_ok = self.low < other.low or (
            self.low == other.low and (self.low_inclusive or not other.low_inclusive)
        )
        high_ok = self.high > other.high or (
            self.high == other.high and (self.high_inclusive or not other.high_inclusive)
        )
        return low_ok and high_ok

    def width(self) -> float:
        return self.high - self.low


class RangePredicate(Expression):
    """A range predicate ``low <= field <= high`` over a numeric attribute.

    This is the predicate shape ReCache's subsumption index understands: the
    predicate's interval is inserted into a per-(source, field) R-tree, and a
    new predicate can reuse a cache whose interval fully covers it.
    """

    def __init__(
        self,
        field: str,
        low: float = -math.inf,
        high: float = math.inf,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        self.field = field
        self.interval = Interval(low, high, low_inclusive, high_inclusive)

    @property
    def low(self) -> float:
        return self.interval.low

    @property
    def high(self) -> float:
        return self.interval.high

    def evaluate(self, row: Mapping) -> bool:
        value = row.get(self.field) if self.field in row else FieldRef(self.field).evaluate(row)
        if value is None:
            return False
        return self.interval.contains_value(value)

    def referenced_fields(self) -> frozenset[str]:
        return frozenset({self.field})

    def signature(self) -> str:
        lo = "[" if self.interval.low_inclusive else "("
        hi = "]" if self.interval.high_inclusive else ")"
        return f"range(${self.field}{lo}{self.interval.low},{self.interval.high}{hi})"

    def subsumes(self, other: "RangePredicate") -> bool:
        """True when this predicate's result set is a superset of ``other``'s."""
        return self.field == other.field and self.interval.covers(other.interval)


_AGG_FUNCS = ("sum", "avg", "min", "max", "count")


@dataclass(frozen=True)
class AggregateSpec:
    """An aggregate to compute, e.g. ``sum(lineitems.l_quantity)``."""

    func: str
    expr: Expression
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise ValueError(f"unsupported aggregate function: {self.func!r}")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return f"{self.func}({self.expr.signature()})"

    def referenced_fields(self) -> frozenset[str]:
        return self.expr.referenced_fields()

    def signature(self) -> str:
        return f"{self.func}({self.expr.signature()})"


# ---------------------------------------------------------------------------
# Predicate analysis helpers
# ---------------------------------------------------------------------------
def conjuncts(expr: Expression | None) -> list[Expression]:
    """Decompose a predicate into its top-level conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        result: list[Expression] = []
        for child in expr.children:
            result.extend(conjuncts(child))
        return result
    return [expr]


def extract_ranges(expr: Expression | None) -> dict[str, Interval]:
    """Extract per-field intervals from a conjunction of range predicates.

    Non-range conjuncts are ignored (they simply do not participate in the
    subsumption check).  When several conjuncts constrain the same field the
    intersection of their intervals is returned.
    """
    ranges: dict[str, Interval] = {}
    for conjunct in conjuncts(expr):
        interval: Interval | None = None
        field: str | None = None
        if isinstance(conjunct, RangePredicate):
            field, interval = conjunct.field, conjunct.interval
        elif isinstance(conjunct, Comparison):
            field, interval = _comparison_to_interval(conjunct)
        if field is None or interval is None:
            continue
        if field in ranges:
            ranges[field] = _intersect(ranges[field], interval)
        else:
            ranges[field] = interval
    return ranges


def _comparison_to_interval(cmp: Comparison) -> tuple[str | None, Interval | None]:
    """Convert ``field <op> literal`` (or the mirrored form) into an interval."""
    field_side, literal_side, op = None, None, cmp.op
    if isinstance(cmp.left, FieldRef) and isinstance(cmp.right, Literal):
        field_side, literal_side = cmp.left, cmp.right
    elif isinstance(cmp.right, FieldRef) and isinstance(cmp.left, Literal):
        field_side, literal_side = cmp.right, cmp.left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if field_side is None or literal_side is None:
        return None, None
    value = literal_side.value
    if not isinstance(value, (int, float)):
        return None, None
    if op == "<":
        return field_side.path, Interval(-math.inf, value, True, False)
    if op == "<=":
        return field_side.path, Interval(-math.inf, value, True, True)
    if op == ">":
        return field_side.path, Interval(value, math.inf, False, True)
    if op == ">=":
        return field_side.path, Interval(value, math.inf, True, True)
    if op == "==":
        return field_side.path, Interval(value, value, True, True)
    return None, None


def _intersect(a: Interval, b: Interval) -> Interval:
    if a.low > b.low or (a.low == b.low and not a.low_inclusive):
        low, low_inc = a.low, a.low_inclusive
    else:
        low, low_inc = b.low, b.low_inclusive
    if a.high < b.high or (a.high == b.high and not a.high_inclusive):
        high, high_inc = a.high, a.high_inclusive
    else:
        high, high_inc = b.high, b.high_inclusive
    if low > high:
        # Empty intersection: represent as a degenerate empty interval.
        return Interval(low, low, False, False)
    return Interval(low, high, low_inc, high_inc)


def predicate_subsumes(cached: Expression | None, new: Expression | None) -> bool:
    """Return True when ``cached``'s result is guaranteed to contain ``new``'s.

    Implements the subsumption rule from Section 3.3: a cached conjunction of
    range predicates subsumes a new conjunction when, for every field the
    cached predicate constrains, the new predicate constrains the same field at
    least as tightly.  A cached predicate of ``None`` (a full scan) subsumes
    everything over the same source.
    """
    if cached is None:
        return True
    if new is None:
        return False
    cached_ranges = extract_ranges(cached)
    new_ranges = extract_ranges(new)
    # Conjuncts we cannot analyse make subsumption unsafe on the cached side.
    analysable = all(
        isinstance(c, (RangePredicate, Comparison)) for c in conjuncts(cached)
    )
    if not analysable:
        return False
    for field, cached_interval in cached_ranges.items():
        new_interval = new_ranges.get(field)
        if new_interval is None:
            return False
        if not cached_interval.covers(new_interval):
            return False
    return True


def referenced_fields(exprs: Iterable[Expression | AggregateSpec]) -> frozenset[str]:
    """Union of attribute paths referenced by a collection of expressions."""
    fields: frozenset[str] = frozenset()
    for expr in exprs:
        fields |= expr.referenced_fields()
    return fields
