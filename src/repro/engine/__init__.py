"""Proteus-style raw-data query engine substrate.

This subpackage implements the query engine that ReCache plugs into: a nested
data model (:mod:`repro.engine.types`), an expression language
(:mod:`repro.engine.expressions`), a logical query algebra
(:mod:`repro.engine.algebra`), pull-based physical operators
(:mod:`repro.engine.operators`), a plan "compiler" that specializes plans into
Python closures (:mod:`repro.engine.compiler` — the stand-in for Proteus' LLVM
code generation), an optimizer that injects materializers and rewrites plans
against the cache (:mod:`repro.engine.optimizer`), and a high-level
:class:`~repro.engine.session.QueryEngine` session object.

Only the leaf modules are imported here to keep import order free of cycles
(the cache core depends on the expression language, while the session depends
on the cache core); the top-level :mod:`repro` package re-exports the full
public API.
"""

from repro.engine.expressions import (
    AggregateSpec,
    And,
    Comparison,
    FieldRef,
    Literal,
    Not,
    Or,
    RangePredicate,
)
from repro.engine.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    Field,
    ListType,
    RecordType,
)

__all__ = [
    "BOOL",
    "FLOAT",
    "INT",
    "STRING",
    "Field",
    "ListType",
    "RecordType",
    "AggregateSpec",
    "And",
    "Comparison",
    "FieldRef",
    "Literal",
    "Not",
    "Or",
    "RangePredicate",
]
