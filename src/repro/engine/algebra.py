"""Logical query algebra.

A thin logical plan representation in the spirit of the nested algebra Proteus
uses [17]: scans over raw sources, selections, unnests (implicit in the
flattening scans), projections, joins, aggregates, plus the two cache-specific
nodes ReCache introduces — ``Materialize`` (cache the child's output) and
``CacheScan`` (read a previously cached result instead of the raw data).

Plans are built by :mod:`repro.engine.optimizer` and interpreted by
:mod:`repro.engine.executor`; their ``signature`` methods provide the
structural identity used for cache matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache_entry import CacheEntry
from repro.engine.expressions import AggregateSpec, Expression


class PlanNode:
    """Base class of logical plan nodes."""

    def children(self) -> list["PlanNode"]:
        return []

    def signature(self) -> str:
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        """Human-readable plan tree (used by examples and debugging)."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    """Full scan over a raw data source."""

    source: str
    fields: list[str] = field(default_factory=list)

    def signature(self) -> str:
        return f"scan({self.source})"

    def describe(self) -> str:
        return f"Scan[{self.source}]({', '.join(self.fields)})"


@dataclass
class SelectNode(PlanNode):
    """Filter the child by a predicate."""

    child: PlanNode
    predicate: Expression | None

    def children(self) -> list[PlanNode]:
        return [self.child]

    def signature(self) -> str:
        pred = self.predicate.signature() if self.predicate else "true"
        return f"select({pred},{self.child.signature()})"

    def describe(self) -> str:
        pred = self.predicate.signature() if self.predicate else "true"
        return f"Select[{pred}]"


@dataclass
class ProjectNode(PlanNode):
    """Restrict the child's rows to a set of fields."""

    child: PlanNode
    fields: list[str]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def signature(self) -> str:
        return f"project({','.join(sorted(self.fields))},{self.child.signature()})"

    def describe(self) -> str:
        return f"Project[{', '.join(self.fields)}]"


@dataclass
class MaterializeNode(PlanNode):
    """Cache the child operator's output (ReCache's materializer, Fig. 3a)."""

    child: PlanNode
    source: str
    predicate: Expression | None
    fields: list[str]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def signature(self) -> str:
        return f"materialize({self.child.signature()})"

    def describe(self) -> str:
        return f"Materialize[{self.source}]"


@dataclass
class CacheScanNode(PlanNode):
    """Scan a previously cached operator result (Fig. 3b / Fig. 4).

    ``exact`` marks an exact operator match; otherwise the cache merely
    subsumes the requested data and ``residual_predicate`` must be re-applied
    on top of the cache scan.
    """

    entry: CacheEntry
    fields: list[str]
    residual_predicate: Expression | None
    exact: bool
    lookup_time: float = 0.0

    def signature(self) -> str:
        kind = "exact" if self.exact else "subsume"
        return f"cachescan({kind},{self.entry.key.as_string()})"

    def describe(self) -> str:
        kind = "exact" if self.exact else "subsuming"
        return f"CacheScan[{kind}, {self.entry.layout_name}, {self.entry.source}]"


@dataclass
class JoinNode(PlanNode):
    """Hash equi-join between two subplans."""

    left: PlanNode
    right: PlanNode
    left_key: str
    right_key: str

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def signature(self) -> str:
        return (
            f"join({self.left_key}={self.right_key},"
            f"{self.left.signature()},{self.right.signature()})"
        )

    def describe(self) -> str:
        return f"HashJoin[{self.left_key} = {self.right_key}]"


@dataclass
class AggregateNode(PlanNode):
    """Aggregation over the child's rows, optionally grouped."""

    child: PlanNode
    aggregates: list[AggregateSpec]
    group_by: list[str] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def signature(self) -> str:
        aggs = ",".join(a.signature() for a in self.aggregates)
        return f"agg({aggs};{','.join(self.group_by)},{self.child.signature()})"

    def describe(self) -> str:
        aggs = ", ".join(a.signature() for a in self.aggregates)
        group = f" group by {', '.join(self.group_by)}" if self.group_by else ""
        return f"Aggregate[{aggs}{group}]"
