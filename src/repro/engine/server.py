"""The concurrent serving layer: a thread-pool front-end for one shared cache.

:class:`EngineServer` wraps a :class:`~repro.engine.session.QueryEngine` with a
``ThreadPoolExecutor`` so many clients can issue queries against one shared
(sharded) ReCache.  Each query executes with its own
:class:`~repro.engine.executor.ExecutionContext` and
:class:`~repro.engine.executor.QueryReport` — nothing per-query is shared
between threads — while lookups, admissions and evictions synchronize inside
the cache manager (per shard, see :mod:`repro.core.sharded_cache`).

:func:`merge_reports` folds the per-query reports of a serving window into one
aggregate ``QueryReport`` (summed counters and times, results dropped), which
is what the multi-client workload driver and the throughput bench consume.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.config import ReCacheConfig
from repro.engine.executor import QueryReport
from repro.engine.query import Query
from repro.engine.session import QueryEngine
from repro.engine.types import RecordType
from repro.formats.datafile import DataSource


def merge_reports(reports: Iterable[QueryReport], label: str = "aggregate") -> QueryReport:
    """Merge per-query reports into one aggregate report.

    Counters and times are summed; the per-query result rows are intentionally
    dropped (an aggregate over many queries has no meaningful row set) and
    ``rows_returned`` becomes the total row count served.
    """
    merged = QueryReport(label=label)
    for report in reports:
        merged.rows_returned += report.rows_returned
        merged.total_time += report.total_time
        merged.operator_time += report.operator_time
        merged.caching_time += report.caching_time
        merged.cache_scan_time += report.cache_scan_time
        merged.lookup_time += report.lookup_time
        merged.exact_hits += report.exact_hits
        merged.subsumption_hits += report.subsumption_hits
        merged.misses += report.misses
        merged.layout_switches += report.layout_switches
        merged.lazy_upgrades += report.lazy_upgrades
        merged.admissions["eager"] += report.admissions.get("eager", 0)
        merged.admissions["lazy"] += report.admissions.get("lazy", 0)
    return merged


class EngineServer:
    """Serves queries from many clients against one shared query engine.

    Usable as a context manager; otherwise call :meth:`shutdown` when done.
    Register every data source before the first query is submitted — source
    registration is not synchronized against in-flight queries.
    """

    def __init__(
        self,
        engine: QueryEngine | None = None,
        config: ReCacheConfig | None = None,
        max_workers: int | None = None,
        response_hook: Callable[[QueryReport], None] | None = None,
    ) -> None:
        if engine is None:
            engine = QueryEngine(config)
        elif config is not None:
            raise ValueError("pass either an engine or a config, not both")
        self.engine = engine
        self.max_workers = max_workers if max_workers is not None else engine.config.max_workers
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        #: called in the worker thread after each execution, before the future
        #: resolves — the place where a network server would serialize the
        #: result and write it to the client's socket.  The throughput bench
        #: uses it to model that per-request delivery latency.
        self.response_hook = response_hook
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="recache-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Data source registration (delegates; do this before serving)
    # ------------------------------------------------------------------
    def register_csv(
        self, name: str, path: str | Path, schema: RecordType, delimiter: str = "|"
    ) -> DataSource:
        return self.engine.register_csv(name, path, schema, delimiter)

    def register_json(self, name: str, path: str | Path, schema: RecordType) -> DataSource:
        return self.engine.register_json(name, path, schema)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, query: Query, *, vectorized: bool | None = None) -> "Future[QueryReport]":
        """Queue a query for execution; returns a future for its report.

        ``vectorized`` optionally overrides the engine's execution pipeline
        (batched vs interpreted) for this request only.
        """
        if self._closed:
            raise RuntimeError("EngineServer is shut down")
        return self._pool.submit(self._serve, query, vectorized)

    def _serve(self, query: Query, vectorized: bool | None = None) -> QueryReport:
        report = self.engine.execute(query, vectorized=vectorized)
        if self.response_hook is not None:
            self.response_hook(report)
        return report

    def execute(self, query: Query) -> QueryReport:
        """Execute one query through the pool and wait for its report."""
        return self.submit(query).result()

    def execute_many(self, queries: Sequence[Query]) -> list[QueryReport]:
        """Execute queries concurrently; reports come back in submission order."""
        futures = [self.submit(query) for query in queries]
        return [future.result() for future in futures]

    def aggregate(self, queries: Sequence[Query], label: str = "aggregate") -> QueryReport:
        """Execute queries concurrently and merge their reports."""
        return merge_reports(self.execute_many(queries), label=label)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def cache_stats(self):
        return self.engine.cache_stats

    def cached_bytes(self) -> int:
        return self.engine.cached_bytes()

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
