"""The concurrent serving layer: a thread-pool front-end for one shared cache.

:class:`EngineServer` wraps a :class:`~repro.engine.session.QueryEngine` with a
``ThreadPoolExecutor`` so many clients can issue queries against one shared
(sharded) ReCache.  Each query executes with its own
:class:`~repro.engine.executor.ExecutionContext` and
:class:`~repro.engine.executor.QueryReport` — nothing per-query is shared
between threads — while lookups, admissions and evictions synchronize inside
the cache manager (per shard, see :mod:`repro.core.sharded_cache`).

Two submission paths:

* :meth:`EngineServer.submit` — one query, one future, one pool task (the
  classic per-request path);
* :meth:`EngineServer.submit_batch` / :meth:`EngineServer.serve_all` — many
  queries at once.  The batch is *coalesced* (identical queries execute once;
  the duplicates' futures resolve with a lightweight copy marked
  ``coalesced=1``) and then *grouped* by data source and predicate overlap:
  each overlap group runs as one pool task via
  :meth:`~repro.engine.session.QueryEngine.execute_group`, widest predicate
  first, so one shard-lock acquisition and one scan feed several requests and
  the narrower queries in the group are served from the cache the first one
  warmed.  Per-query futures resolve as results complete, not when the whole
  batch finishes.

Result formats: every submission path accepts a ``result_format`` override
(``"rows"`` / ``"columnar"`` / ``None`` for the query's own or the engine's
default; ``submit_batch`` additionally takes a per-query sequence).  The
format is resolved per submission and threaded through grouping and
coalescing: identical queries coalesce *across* formats — the format shapes
only the exit representation, not execution — and each duplicate's report
carries the shared result converted to its requested type.

Backpressure: the server admits at most ``max_pending_queries`` queries into
its queue; further ``submit``/``submit_batch`` calls block until workers drain
the backlog (a batch is admitted atomically once the depth falls below the
bound).  Every report carries ``queue_wait_time`` (blocking plus queue
residency) and ``queue_depth`` (the backlog observed at enqueue), which
:func:`merge_reports` aggregates for a serving window.

:func:`merge_reports` folds the per-query reports of a serving window into one
aggregate ``QueryReport`` (summed counters and times, results dropped), which
is what the multi-client workload driver and the throughput benches consume.
"""

from __future__ import annotations

# recheck-lint: check-futures — every path that creates a per-query future
# must reach set_result/set_exception, including shutdown/exception paths.
# recheck-lint: check-no-swallow — except blocks must re-raise, wrap in a
# typed error, or route through an audited containment sink.

import math
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.config import ReCacheConfig, validate_result_format
from repro.core.errors import DeadlineExceeded, QueryRejected
from repro.engine.executor import QueryReport
from repro.faults import runtime as faults
from repro.engine.expressions import RangePredicate
from repro.engine.query import Query
from repro.engine.session import QueryEngine
from repro.engine.types import ColumnarResult, RecordType
from repro.formats.datafile import DataSource


def merge_reports(reports: Iterable[QueryReport], label: str = "aggregate") -> QueryReport:
    """Merge per-query reports into one aggregate report.

    Counters and times are summed; the per-query result rows are intentionally
    dropped (an aggregate over many queries has no meaningful row set) and
    ``rows_returned`` becomes the total row count served.  Admission counters
    are carried over key by key — *every* key, not a hardcoded subset — and
    the serving-tier counters aggregate as total wait time, total coalesced
    requests and the deepest queue observed in the window.
    """
    merged = QueryReport(label=label)
    for report in reports:
        merged.rows_returned += report.rows_returned
        merged.total_time += report.total_time
        merged.operator_time += report.operator_time
        merged.caching_time += report.caching_time
        merged.cache_scan_time += report.cache_scan_time
        merged.lookup_time += report.lookup_time
        merged.exact_hits += report.exact_hits
        merged.subsumption_hits += report.subsumption_hits
        merged.misses += report.misses
        merged.layout_switches += report.layout_switches
        merged.lazy_upgrades += report.lazy_upgrades
        merged.queue_wait_time += report.queue_wait_time
        merged.coalesced += report.coalesced
        merged.coalesced_wait_time += report.coalesced_wait_time
        merged.offloaded += report.offloaded
        merged.retries += report.retries
        merged.degraded_scans += report.degraded_scans
        merged.quarantined_entries += report.quarantined_entries
        merged.shed += report.shed
        merged.deadline_exceeded += report.deadline_exceeded
        if report.queue_depth > merged.queue_depth:
            merged.queue_depth = report.queue_depth
        for kind, count in report.admissions.items():
            merged.admissions[kind] = merged.admissions.get(kind, 0) + count
    return merged


# ---------------------------------------------------------------------------
# Batched submission plumbing
# ---------------------------------------------------------------------------
@dataclass
class _Submission:
    """One client request: a query plus the future its report resolves."""

    query: Query
    future: "Future[QueryReport]"
    enqueued_at: float
    queue_depth: int
    #: resolved output representation for THIS request ("rows" / "columnar");
    #: duplicates of one execution may each request a different format.
    result_format: str = "rows"


@dataclass
class _Execution:
    """One engine execution serving one or more coalesced submissions."""

    query: Query
    submissions: list[_Submission] = field(default_factory=list)


def _coalesce(submissions: Sequence[_Submission]) -> list[_Execution]:
    """Collapse identical queries in a batch into single executions.

    The first submission of each distinct query signature becomes the primary
    (its report is the real execution report); later duplicates ride along and
    resolve with a coalesced copy.
    """
    by_signature: dict[str, _Execution] = {}
    executions: list[_Execution] = []
    for submission in submissions:
        signature = submission.query.signature()
        execution = by_signature.get(signature)
        if execution is None:
            execution = _Execution(query=submission.query)
            by_signature[signature] = execution
            executions.append(execution)
        execution.submissions.append(submission)
    return executions


def _convert_results(
    results: "list[dict] | ColumnarResult", result_format: str
) -> "list[dict] | ColumnarResult":
    """One execution's result set in the representation a submission asked for.

    Coalescing works across result formats (the format is not part of the
    query signature), so a duplicate may request a different representation
    than the primary execution produced; the conversion is loss-free in both
    directions (``ColumnarResult.to_rows`` is the exact rows exit).
    """
    if result_format == "columnar":
        if isinstance(results, ColumnarResult):
            return results
        return ColumnarResult.from_rows(results)
    if isinstance(results, ColumnarResult):
        return results.to_rows()
    return results


def _interval_of(query: Query) -> tuple[str, float, float] | None:
    """The (field, low, high) scan interval of a single-table range query.

    ``None`` marks queries the overlap grouping cannot reason about
    (multi-table joins, non-range predicates) — they each form their own
    group and keep full pool parallelism.
    """
    if len(query.tables) != 1:
        return None
    predicate = query.tables[0].predicate
    if predicate is None:
        return ("*", -math.inf, math.inf)
    if isinstance(predicate, RangePredicate):
        return (predicate.field, predicate.low, predicate.high)
    return None


def group_batch(executions: Sequence[_Execution]) -> list[list[_Execution]]:
    """Group a batch's executions by data source and predicate overlap.

    Single-table range queries over the same (source, field) whose intervals
    form an overlap-connected chain share one group — one worker executes them
    widest-first, so the head query warms the cache and the rest reuse it
    (exact or subsumption hits) without re-queuing.  Everything else runs as
    its own group so disjoint work keeps the whole pool busy.
    """
    groups: list[list[_Execution]] = []
    clusters: dict[tuple[str, str], list[tuple[float, float, _Execution]]] = {}
    for execution in executions:
        interval = _interval_of(execution.query)
        if interval is None:
            groups.append([execution])
            continue
        field_name, low, high = interval
        key = (execution.query.tables[0].source, field_name)
        clusters.setdefault(key, []).append((low, high, execution))
    for spans in clusters.values():
        spans.sort(key=lambda item: item[0])
        current: list[tuple[float, float, _Execution]] = []
        current_high = -math.inf
        for low, high, execution in spans:
            if current and low > current_high:
                groups.append(_order_for_cache_reuse(current))
                current = []
                current_high = -math.inf
            current.append((low, high, execution))
            current_high = max(current_high, high)
        if current:
            groups.append(_order_for_cache_reuse(current))
    return groups


def _order_for_cache_reuse(
    spans: Sequence[tuple[float, float, _Execution]]
) -> list[_Execution]:
    """Widest interval first (most likely to subsume the rest), stable ties."""
    return [item[2] for item in sorted(spans, key=lambda item: -(item[1] - item[0]))]


class EngineServer:
    """Serves queries from many clients against one shared query engine.

    Usable as a context manager; otherwise call :meth:`shutdown` when done.
    Register every data source before the first query is submitted — source
    registration is not synchronized against in-flight queries.
    """

    #: Lock discipline, machine-checked by ``python -m repro.analysis.lint``.
    #: One lock guards the lifecycle flag and the queue accounting; the
    #: backpressure condition shares it (see ``__init__``), which the alias
    #: declaration below makes visible to the analyzer.
    GUARDED_BY = {
        "_closed": "_lifecycle",
        "_pending": "_lifecycle",
        "peak_queue_depth": "_lifecycle",
        "coalesced_served": "_lifecycle",
    }
    LOCK_ALIASES = {"_backpressure": "_lifecycle"}

    def __init__(
        self,
        engine: QueryEngine | None = None,
        config: ReCacheConfig | None = None,
        max_workers: int | None = None,
        response_hook: Callable[[QueryReport], None] | None = None,
        max_pending: int | None = None,
    ) -> None:
        if engine is None:
            engine = QueryEngine(config)
        elif config is not None:
            raise ValueError("pass either an engine or a config, not both")
        self.engine = engine
        self.max_workers = max_workers if max_workers is not None else engine.config.max_workers
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_pending = (
            max_pending if max_pending is not None else engine.config.max_pending_queries
        )
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        #: called in the worker thread after each execution, before the future
        #: resolves — the place where a network server would serialize the
        #: result and write it to the client's socket.  The throughput bench
        #: uses it to model that per-request delivery latency.  Coalesced
        #: duplicates get a delivery call of their own.
        self.response_hook = response_hook
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="recache-serve"
        )
        # One lock guards the lifecycle flag AND the pending-queue accounting:
        # a submit racing a shutdown either fully enqueues (and the closing
        # pool drains it) or observes ``_closed`` and raises — never a query
        # half-queued into a closing pool.
        self._lifecycle = threading.Lock()
        self._backpressure = threading.Condition(self._lifecycle)
        self._closed = False
        self._pending = 0
        #: deepest pending backlog observed since construction
        self.peak_queue_depth = 0
        #: requests served from another request's execution (lifetime total)
        self.coalesced_served = 0

    # ------------------------------------------------------------------
    # Data source registration (delegates; do this before serving)
    # ------------------------------------------------------------------
    def register_csv(
        self, name: str, path: str | Path, schema: RecordType, delimiter: str = "|"
    ) -> DataSource:
        return self.engine.register_csv(name, path, schema, delimiter)

    def register_json(self, name: str, path: str | Path, schema: RecordType) -> DataSource:
        return self.engine.register_json(name, path, schema)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query,
        *,
        vectorized: bool | None = None,
        result_format: str | None = None,
    ) -> "Future[QueryReport]":
        """Queue one query for execution; returns a future for its report.

        ``vectorized`` optionally overrides the engine's execution pipeline
        (batched vs interpreted) and ``result_format`` the output
        representation (``"rows"`` / ``"columnar"``) for this request only.
        Blocks while the pending queue is at ``max_pending``.
        """
        return self.submit_batch([query], vectorized=vectorized, result_format=result_format)[0]

    def _resolve_format(self, query: Query, override: str | None) -> str:
        """One submission's effective output format (explicit > query > config)."""
        result_format = override or query.result_format or self.engine.config.result_format
        validate_result_format(result_format)
        return result_format

    def submit_batch(
        self,
        queries: Sequence[Query],
        *,
        vectorized: bool | None = None,
        result_format: "str | Sequence[str | None] | None" = None,
    ) -> "list[Future[QueryReport]]":
        """Queue a batch of queries; returns one future per query, in order.

        The batch is coalesced and grouped by source/predicate overlap before
        hitting the worker pool (see the module docstring); futures resolve
        individually as their results complete.  ``result_format`` is either
        one value for the whole batch or a per-query sequence (aligned with
        ``queries``, ``None`` entries falling back to each query's own /
        the engine's default); duplicates still coalesce across formats and
        each future resolves with its requested representation.
        """
        queries = list(queries)
        if not queries:
            return []
        if result_format is None or isinstance(result_format, str):
            format_overrides: list[str | None] = [result_format] * len(queries)
        else:
            format_overrides = list(result_format)
            if len(format_overrides) != len(queries):
                raise ValueError(
                    f"result_format length {len(format_overrides)} != "
                    f"query count {len(queries)}"
                )
        formats = [
            self._resolve_format(query, override)
            for query, override in zip(queries, format_overrides)
        ]
        enqueued_at = time.perf_counter()
        with self._backpressure:
            if self._closed:
                raise RuntimeError("EngineServer is shut down")
            while self._pending >= self.max_pending:
                # Load shedding: a full queue on top of heavy eviction churn
                # means admitted work is evicting itself faster than it can be
                # reused — reject now (typed, before any future exists) rather
                # than queue work the cache cannot absorb.
                if self._should_shed():
                    raise QueryRejected(
                        f"queue full ({self._pending} pending) under eviction "
                        f"pressure; retry after the cache drains"
                    )
                self._backpressure.wait()
                if self._closed:
                    raise RuntimeError("EngineServer is shut down")
            depth = self._pending
            self._pending += len(queries)
            if self._pending > self.peak_queue_depth:
                self.peak_queue_depth = self._pending
            submissions: list[_Submission] = []
            groups: list[list[_Execution]] = []
            submitted = 0
            try:
                submissions = [
                    _Submission(query, Future(), enqueued_at, depth, result_format=fmt)
                    for query, fmt in zip(queries, formats)
                ]
                groups = group_batch(_coalesce(submissions))
                while submitted < len(groups):
                    # Submitted under the lifecycle lock: a concurrent shutdown
                    # cannot close the pool between the ``_closed`` check above
                    # and this enqueue.
                    self._pool.submit(self._serve_group, groups[submitted], vectorized)
                    submitted += 1
            except BaseException as exc:
                # Roll back whatever never reached the pool: resolve its
                # futures exceptionally and return its pending slots.  Without
                # this, a failing enqueue would leak backpressure capacity
                # forever and leave clients blocked on futures that never
                # resolve.  Groups already in flight settle themselves.
                stranded = [
                    submission
                    for group in groups[submitted:]
                    for execution in group
                    for submission in execution.submissions
                ]
                if not groups:
                    stranded = submissions
                for submission in stranded:
                    if not submission.future.done():
                        submission.future.set_exception(exc)
                in_flight = sum(
                    len(execution.submissions)
                    for group in groups[:submitted]
                    for execution in group
                )
                self._pending -= len(queries) - in_flight
                self._backpressure.notify_all()
                raise
        return [submission.future for submission in submissions]

    def _should_shed(self) -> bool:
        """True when a full queue coincides with heavy eviction pressure.

        Called with ``_lifecycle`` held; ``eviction_pressure`` takes the cache
        locks (higher rank) internally and costs a few dict operations.
        """
        threshold = self.engine.config.shed_pressure_threshold
        if threshold is None:
            return False
        return self.engine.recache.eviction_pressure() >= threshold

    def serve_all(
        self,
        queries: Sequence[Query],
        *,
        vectorized: bool | None = None,
        result_format: "str | Sequence[str | None] | None" = None,
        timeout: float | None = None,
    ) -> list[QueryReport]:
        """Submit a batch and wait for every report (submission order).

        ``timeout`` bounds the wait on *each* future (seconds); the server's
        containment guarantees every future resolves, so a timeout firing
        indicates a stuck worker, not normal backpressure.
        """
        futures = self.submit_batch(queries, vectorized=vectorized, result_format=result_format)
        return [future.result(timeout) for future in futures]

    def _serve_group(self, group: Sequence[_Execution], vectorized: bool | None) -> None:
        """Worker entry point: run one cache-affine group through the session.

        :meth:`QueryEngine.execute_group` executes the queries back to back on
        this worker; the callbacks resolve each execution's futures the moment
        its result (or failure) is known, so clients never wait for the whole
        group.  ``execute_group`` preserves query order, which is what lets
        the callbacks track the current execution with a plain index.  A
        failure *outside* the per-query handling (argument validation, a
        raising callback, a broken session) must still resolve every
        remaining future — clients block on them, and their pending slots
        hold backpressure capacity — hence the catch-all that fails the
        executions the callbacks never reached.  That same catch-all contains
        injected worker crashes (``server.worker`` fault scope): a crash at
        worker entry fails every future in the group with the typed
        :class:`~repro.core.errors.WorkerCrashed` instead of stranding them.

        Executions whose query spent its whole deadline *queued* fail with
        :class:`DeadlineExceeded` up front instead of executing: the engine
        measures its deadline from execution start, so queue residency is
        this layer's responsibility.
        """
        live = []
        now = time.perf_counter()
        for execution in group:
            deadline = execution.query.deadline or self.engine.config.default_deadline
            enqueued_at = execution.submissions[0].enqueued_at
            if deadline is not None and now >= enqueued_at + deadline:
                self._fail_execution(
                    execution,
                    DeadlineExceeded(
                        f"query spent its deadline queued "
                        f"(label={execution.query.label!r})"
                    ),
                )
            else:
                live.append(execution)
        if not live:
            return

        position = [0]
        execution_started = [time.perf_counter()]

        def resolve(query: Query, report: QueryReport) -> None:
            execution = live[position[0]]
            position[0] += 1
            self._resolve_execution(execution, report, execution_started[0])
            execution_started[0] = time.perf_counter()

        def fail(query: Query, exc: Exception) -> None:
            execution = live[position[0]]
            position[0] += 1
            self._fail_execution(execution, exc)
            execution_started[0] = time.perf_counter()

        try:
            injector = faults.injector_for("server.worker")
            if injector is not None:
                injector()  # raises WorkerCrashed: contained by the catch-all
            self.engine.execute_group(
                [execution.query for execution in live],
                vectorized=vectorized,
                # The primary submission's format drives the execution; coalesced
                # duplicates get their own converted copies when they resolve.
                result_formats=[execution.submissions[0].result_format for execution in live],
                on_report=resolve,
                on_error=fail,
            )
        except BaseException as exc:
            for execution in live[position[0]:]:
                self._fail_execution(execution, exc)
            raise

    def _fail_execution(self, execution: _Execution, exc: BaseException) -> None:
        """Resolve one execution's futures exceptionally and settle its slots.

        Guards ``done()`` because an execution that partially resolved before
        failing (e.g. the primary resolved, then a duplicate's conversion
        raised) reaches this path with some futures already terminal.
        """
        try:
            for submission in execution.submissions:
                if not submission.future.done():
                    submission.future.set_exception(exc)
        finally:
            self._settle(len(execution.submissions), 0)

    def _resolve_execution(
        self, execution: _Execution, report: QueryReport, started: float
    ) -> None:
        primary = execution.submissions[0]
        coalesced = 0
        settled = False
        # Every submission MUST leave this method with its future resolved and
        # its pending slot returned — a raising response_hook (or any delivery
        # bug) would otherwise hang clients and leak backpressure capacity.
        try:
            report.queue_wait_time = started - primary.enqueued_at
            report.queue_depth = primary.queue_depth
            if self.response_hook is not None:
                self.response_hook(report)
            resolved_at = time.perf_counter()
            # Cross-format conversion happens once per distinct requested
            # format, not once per duplicate — N rows-format duplicates of a
            # columnar execution share one to_rows() materialization.
            converted = {primary.result_format: report.results}
            copies: list[tuple[_Submission, QueryReport]] = []
            for submission in execution.submissions[1:]:
                results = converted.get(submission.result_format)
                if results is None:
                    results = _convert_results(report.results, submission.result_format)
                    converted[submission.result_format] = results
                copy = self._coalesced_report(report, submission, resolved_at, results)
                if self.response_hook is not None:
                    self.response_hook(copy)
                copies.append((submission, copy))
                coalesced += 1
            # Settle BEFORE resolving: a client that observes its future
            # resolved must also observe the pending slots returned and
            # ``coalesced_served`` updated (set_result cannot raise here —
            # these futures are created unresolved and resolved only by us).
            self._settle(len(execution.submissions), coalesced)
            settled = True
            primary.future.set_result(report)
            for submission, copy in copies:
                submission.future.set_result(copy)
        except BaseException as exc:
            for submission in execution.submissions:
                if not submission.future.done():
                    submission.future.set_exception(exc)
        finally:
            if not settled:
                self._settle(len(execution.submissions), 0)

    @staticmethod
    def _coalesced_report(
        report: QueryReport,
        submission: _Submission,
        resolved_at: float,
        results: "list[dict] | ColumnarResult",
    ) -> QueryReport:
        """The report of a request served from another request's execution.

        Carries the shared result set — already converted by the caller to
        the submission's own ``result_format`` when it differs from the
        primary's — but none of the execution counters: the engine did no
        work for this request, so a merged serving window still reflects
        actual cache traffic, with ``coalesced`` counting the piggybacked
        requests.  Each duplicate gets its own report object; only the
        result data is shared.

        The duplicate's wait goes into ``coalesced_wait_time``, NOT
        ``queue_wait_time``: only the primary waited for an execution slot,
        and summing N full waits per single execution made merged queue wait
        dwarf wall time in the batched submission bench.  Both instants come
        from the coordinator's clock (worker processes never produce
        timestamps), so the difference is meaningful.
        """
        copy = QueryReport(label=report.label)
        copy.results = results
        copy.rows_returned = report.rows_returned
        copy.coalesced_wait_time = resolved_at - submission.enqueued_at
        copy.queue_depth = submission.queue_depth
        copy.coalesced = 1
        return copy

    def _settle(self, count: int, coalesced: int) -> None:
        with self._backpressure:
            self._pending -= count
            self.coalesced_served += coalesced
            self._backpressure.notify_all()

    def execute(self, query: Query, timeout: float | None = None) -> QueryReport:
        """Execute one query through the pool and wait for its report."""
        return self.submit(query).result(timeout)

    def execute_many(
        self, queries: Sequence[Query], timeout: float | None = None
    ) -> list[QueryReport]:
        """Execute queries as independent requests; reports in submission order.

        Unlike :meth:`serve_all` this performs no coalescing or grouping —
        every query is its own pool task (the per-request baseline the async
        submission bench compares against).  ``timeout`` bounds the wait on
        each future.
        """
        futures = [self.submit(query) for query in queries]
        return [future.result(timeout) for future in futures]

    def aggregate(
        self, queries: Sequence[Query], label: str = "aggregate", timeout: float | None = None
    ) -> QueryReport:
        """Execute queries concurrently and merge their reports."""
        return merge_reports(self.execute_many(queries, timeout=timeout), label=label)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def cache_stats(self):
        return self.engine.cache_stats

    def cached_bytes(self) -> int:
        return self.engine.cached_bytes()

    @property
    def queue_depth(self) -> int:
        """Queries currently pending (queued or executing)."""
        return self._pending  # unguarded-read: GIL-atomic int; monitoring path

    def shutdown(self, wait: bool = True) -> None:
        with self._backpressure:
            self._closed = True
            # Wake submitters blocked on backpressure so they observe the
            # closed flag and raise instead of waiting forever.
            self._backpressure.notify_all()
        self._pool.shutdown(wait=wait)
        # The engine's process-pool resources belong to this server's
        # lifecycle too: terminate/join worker processes and unlink every
        # live shm segment even on wait=False, so no shutdown path can
        # leave /dev/shm residue or zombie children behind.
        self.engine.close_workers(wait=wait)

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
