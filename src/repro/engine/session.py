"""The high-level query engine session tying everything together.

:class:`QueryEngine` is the public entry point of the library: register raw CSV
and JSON files, then call :meth:`QueryEngine.execute` with declarative
:class:`~repro.engine.query.Query` objects.  Each execution goes through the
cache-aware optimizer and the instrumented executor, and returns a
:class:`~repro.engine.executor.QueryReport` carrying the results and the timing
breakdown the benchmarks consume.
"""

from __future__ import annotations

# recheck-lint: check-no-swallow — except blocks in this module must re-raise,
# wrap in a typed error, or route through an audited containment sink.

import random
import threading
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.core.cache_manager import ReCache
from repro.core.circuit_breaker import SourceCircuitBreaker
from repro.core.config import ReCacheConfig, validate_execution_mode, validate_result_format
from repro.core.errors import DeadlineExceeded, TransientScanError
from repro.core.sharded_cache import ShardedReCache
from repro.core.shm_registry import ShmRegistry
from repro.faults import runtime as faults
from repro.engine.executor import (
    ExecutionContext,
    QueryReport,
    execute_plan,
    execute_plan_columnar,
    try_offload_cache_scan,
)
from repro.engine.procpool import ProcessExecutionPool
from repro.engine.optimizer import PlanInfo, build_plan
from repro.engine.query import Query
from repro.engine.types import RecordType
from repro.formats.datafile import DataSource, DataSourceCatalog


class QueryEngine:
    """Cache-accelerated query engine over raw heterogeneous data files.

    ``execute`` may be called from many threads at once (that is what
    :class:`~repro.engine.server.EngineServer` does): each execution gets its
    own :class:`~repro.engine.executor.ExecutionContext` and report, and the
    shared cache manager synchronizes internally.  Register all data sources
    before the first concurrent query — registration is not synchronized.
    """

    def __init__(
        self,
        config: ReCacheConfig | None = None,
        recache: ReCache | ShardedReCache | None = None,
    ) -> None:
        self.config = config or ReCacheConfig()
        if recache is None:
            if self.config.shard_count > 1:
                recache = ShardedReCache(self.config)
            else:
                recache = ReCache(self.config)
        self.recache = recache
        self.catalog = DataSourceCatalog()
        #: routes repeatedly faulting sources around the cache (see execute)
        self.breaker = SourceCircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        if self.config.faults:
            # Config-driven fault plans are process-global by design: the
            # injection points live in the shared format plugins and layouts.
            faults.install_spec(self.config.faults, seed=self.config.seed)
        self.query_count = 0
        self._count_lock = threading.Lock()
        #: lazily created process-pool execution resources (see
        #: :meth:`_process_resources`); guarded by ``_proc_lock`` so the
        #: first concurrent offload builds exactly one pool + registry
        self._proc_lock = threading.Lock()
        self._procpool = None
        self._shm_registry = None

    # ------------------------------------------------------------------
    # Data source registration
    # ------------------------------------------------------------------
    def register_csv(
        self, name: str, path: str | Path, schema: RecordType, delimiter: str = "|"
    ) -> DataSource:
        """Register a CSV file as a queryable data source."""
        return self.catalog.register_csv(name, path, schema, delimiter)

    def register_json(self, name: str, path: str | Path, schema: RecordType) -> DataSource:
        """Register a line-delimited JSON file as a queryable data source."""
        return self.catalog.register_json(name, path, schema)

    def register(self, source: DataSource) -> DataSource:
        return self.catalog.register(source)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> PlanInfo:
        """Build (but do not execute) the cache-aware plan for a query."""
        return build_plan(query, self.catalog, self.recache)

    def execute(
        self,
        query: Query,
        *,
        vectorized: bool | None = None,
        result_format: str | None = None,
        execution_mode: str | None = None,
    ) -> QueryReport:
        """Execute a query and return its results plus execution report.

        ``vectorized`` overrides ``config.vectorized_execution`` for this one
        query (the parity tests and the batch-pipeline bench compare the two
        pipelines over the same engine this way).  ``result_format`` likewise
        overrides the output representation for this one query: ``"rows"``
        (the default list of row dictionaries) or ``"columnar"`` (a
        :class:`~repro.engine.types.ColumnarResult` carrying the batched
        pipeline's record batches with no per-row dict assembly at the exit).
        Resolution order: explicit argument, then ``query.result_format``,
        then ``config.result_format``.  Execution, report counters and cache
        behaviour are identical in both formats.

        Failure containment: the query's deadline (``query.deadline`` falling
        back to ``config.default_deadline``) spans all attempts; a
        :class:`~repro.core.errors.TransientScanError` is retried up to
        ``config.scan_retry_limit`` times with jittered exponential backoff
        (admission happens only at scan completion, so a failed attempt
        leaves no cache state behind); each failed attempt feeds the
        per-source circuit breaker, and queries over a tripped source are
        planned as plain raw scans until its cooldown elapses.
        """
        config = self.config
        if vectorized is not None and vectorized != config.vectorized_execution:
            config = config.with_overrides(vectorized_execution=vectorized)
        if result_format is None:
            result_format = query.result_format or config.result_format
        validate_result_format(result_format)
        if execution_mode is None:
            execution_mode = query.execution_mode or config.execution_mode
        validate_execution_mode(execution_mode)
        deadline = query.deadline if query.deadline is not None else config.default_deadline
        deadline_at = time.perf_counter() + deadline if deadline is not None else None
        retry_limit = max(0, config.scan_retry_limit)
        attempt = 0
        while True:
            try:
                report = self._execute_attempt(
                    query, config, result_format, deadline_at, execution_mode
                )
            except TransientScanError as exc:
                for table in query.tables:
                    self.breaker.record_failure(table.source)
                if attempt >= retry_limit:
                    raise
                if deadline_at is not None and time.perf_counter() >= deadline_at:
                    raise DeadlineExceeded(
                        f"deadline expired retrying transient scan fault "
                        f"(label={query.label!r}, attempts={attempt + 1})"
                    ) from exc
                # Jittered exponential backoff; the jitter needs no
                # determinism (fault schedules are seeded independently).
                backoff = config.scan_retry_backoff * (2**attempt)
                time.sleep(backoff * (0.5 + random.random() / 2))
                attempt += 1
                continue
            report.retries = attempt
            for table in query.tables:
                self.breaker.record_success(table.source)
            with self._count_lock:
                self.query_count += 1
            return report

    def _execute_attempt(
        self,
        query: Query,
        config: ReCacheConfig,
        result_format: str,
        deadline_at: float | None,
        execution_mode: str = "threads",
    ) -> QueryReport:
        """One planning + execution pass of :meth:`execute` (no retry logic)."""
        report = QueryReport(label=query.label)
        sequence = self.recache.begin_query()
        started = time.perf_counter()

        plan_info = build_plan(query, self.catalog, self.recache, breaker=self.breaker)
        ctx = ExecutionContext(
            catalog=self.catalog,
            recache=self.recache,
            config=config,
            report=report,
            sequence=sequence,
            query_started=started,
            deadline_at=deadline_at,
        )
        results = None
        if execution_mode == "processes" and result_format == "rows":
            pool, registry = self._process_resources()
            results = try_offload_cache_scan(plan_info.plan, ctx, pool, registry)
        if results is None:
            # Thread path — also the fallback for every plan the pool cannot
            # serve (misses, joins, nested data, columnar exits, deadlines).
            if result_format == "columnar":
                results = execute_plan_columnar(plan_info.plan, ctx)
            else:
                results = execute_plan(plan_info.plan, ctx)

        report.results = results
        report.rows_returned = len(results)
        report.total_time = time.perf_counter() - started
        return report

    def _process_resources(self):
        """The engine's process pool + shm registry, built on first use."""
        with self._proc_lock:
            if self._procpool is None:
                registry = ShmRegistry()
                self.recache.attach_shm_registry(registry)
                workers = self.config.process_workers or self.config.max_workers
                self._shm_registry = registry
                self._procpool = ProcessExecutionPool(workers)
            return self._procpool, self._shm_registry

    def close_workers(self, wait: bool = True) -> None:
        """Tear down process-pool execution resources (idempotent).

        Joins (or, with ``wait=False``, terminates) every worker process and
        unlinks every live shared-memory segment.  Safe on engines that
        never offloaded; :meth:`~repro.engine.server.EngineServer.shutdown`
        calls this so no server shutdown can strand segments or children.
        """
        with self._proc_lock:
            pool, registry = self._procpool, self._shm_registry
            self._procpool = None
            self._shm_registry = None
        if pool is not None:
            pool.shutdown(wait=wait)
        if registry is not None:
            registry.close()

    def execute_group(
        self,
        queries: Sequence[Query],
        *,
        vectorized: bool | None = None,
        result_formats: "Sequence[str | None] | str | None" = None,
        on_report: Callable[[Query, QueryReport], None] | None = None,
        on_error: Callable[[Query, Exception], None] | None = None,
    ) -> list["QueryReport | None"]:
        """Execute a cache-affine group of queries back to back on this thread.

        The server's batched submission path routes each group here: the group
        shares one worker, so the first query of an overlapping group warms the
        cache and the rest are served from it in the same pass — one shard-lock
        acquisition and one raw scan feeding several requests instead of N
        independently queued executions.  ``on_report`` is invoked after each
        query completes (the server uses it to resolve that query's future
        immediately rather than when the whole group finishes).  A failing
        query is isolated when ``on_error`` is given: the exception goes to the
        callback, its report slot is ``None``, and the rest of the group still
        executes; without the callback the exception propagates.

        ``result_formats`` selects each query's output representation: one
        string applies to the whole group, a sequence (aligned with
        ``queries``) carries per-query overrides — the serving tier uses the
        latter so one group can mix ``"rows"`` and ``"columnar"`` requests.
        """
        if result_formats is None or isinstance(result_formats, str):
            formats: list[str | None] = [result_formats] * len(queries)
        else:
            formats = list(result_formats)
            if len(formats) != len(queries):
                raise ValueError(
                    f"result_formats length {len(formats)} != query count {len(queries)}"
                )
        reports: list[QueryReport | None] = []
        for query, result_format in zip(queries, formats):
            try:
                report = self.execute(
                    query, vectorized=vectorized, result_format=result_format
                )
            except Exception as exc:
                if on_error is None:
                    raise
                on_error(query, exc)
                reports.append(None)
                continue
            if on_report is not None:
                on_report(query, report)
            reports.append(report)
        return reports

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_stats(self):
        """Aggregate cache-manager counters (hits, misses, evictions, ...)."""
        return self.recache.stats

    def cache_entries(self):
        return self.recache.entries()

    def cached_bytes(self) -> int:
        return self.recache.total_bytes

    def explain(self, query: Query) -> str:
        """Return a human-readable plan for ``query`` without executing it."""
        return self.plan(query).plan.pretty()
