"""Figure 11: sensitivity of the layout-selection gains to the workload mix."""

from repro.bench.experiments import (
    figure11a_sensitivity_nested_symantec,
    figure11b_sensitivity_nested_yelp,
    figure11c_sensitivity_json_fraction,
)
from repro.bench.reporting import format_table


def test_fig11a_nested_sweep_symantec(run_experiment):
    rows = run_experiment(
        figure11a_sensitivity_nested_symantec,
        nested_percentages=(0, 50, 100),
        num_queries=40,
        json_records=700,
    )
    print(format_table(rows, title="Figure 11a: Symantec, % queries with nested attributes"))
    # Paper shape: the advantage over Parquet grows as more queries touch
    # nested attributes (allow generous slack: each point is a full workload
    # measurement and run-to-run noise at bench scale is tens of percent).
    assert rows[-1]["reduction_vs_parquet_pct"] >= rows[0]["reduction_vs_parquet_pct"] - 20.0


def test_fig11b_nested_sweep_yelp(run_experiment):
    rows = run_experiment(
        figure11b_sensitivity_nested_yelp,
        nested_percentages=(0, 50, 100),
        num_queries=40,
        total_records=900,
    )
    print(format_table(rows, title="Figure 11b: Yelp, % queries with nested attributes"))
    assert len(rows) == 3


def test_fig11c_json_fraction_sweep(run_experiment):
    rows = run_experiment(
        figure11c_sensitivity_json_fraction,
        json_percentages=(0, 50, 100),
        num_queries=40,
        json_records=700,
    )
    print(format_table(rows, title="Figure 11c: % of queries over JSON data"))
    assert len(rows) == 3
