"""CLI for the worker-scaling acceptance run: threads vs processes, 1..2*cores.

Not a paper figure — this measures the process-pool execution path added on
top of the reproduction.  The full run sweeps worker counts from 1 to twice
the core count on a pure cache-hit zipfian workload with ``io_wait_ms=0``
(so the thread rows are GIL-bound and the process rows measure real
parallelism); ``--smoke`` shrinks the sweep for CI.  The acceptance bar —
processes >= 1.5x threads at ``workers == cores`` — only applies on
multi-core hosts; the JSON written by ``--out`` records the core count so
single-core runs stay honest rather than silently passing.

Usage::

    PYTHONPATH=src python benchmarks/bench_worker_scaling.py \
        [--smoke] [--out BENCH_worker_scaling.json]
"""

from __future__ import annotations

import argparse
import json
import os

from repro.bench.concurrency_experiments import worker_scaling_experiment
from repro.bench.reporting import format_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sweep for CI")
    parser.add_argument("--out", metavar="PATH", help="write the JSON result here")
    options = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if options.smoke:
        result = worker_scaling_experiment(
            worker_counts=(1, 2), clients=4, queries_per_client=15
        )
    else:
        result = worker_scaling_experiment(
            worker_counts=tuple(sorted({1, 2, cores, 2 * cores}))
        )

    print(format_table(result["scaling_rows"], title="Throughput: threads vs processes"))
    ratios = result["ratio_by_workers"]
    print(
        f"processes/threads ratio (cores={cores}): "
        + ", ".join(f"{w} workers = {r:.2f}x" for w, r in sorted(ratios.items()))
    )

    at_cores = ratios.get(cores, max(ratios.values()))
    if cores >= 2:
        bar = 1.0 if options.smoke else 1.5
        ok = at_cores >= bar
        print(f"acceptance: ratio at {cores} workers = {at_cores:.2f}x (bar {bar:.1f}x)")
    else:
        ok = True
        print(
            f"acceptance: single-core host — ratio {at_cores:.2f}x recorded, "
            "bar not applicable (no parallelism to pay for IPC overhead)"
        )

    if options.out:
        result["acceptance"] = {"ratio_at_cores": at_cores, "passed": ok, "smoke": options.smoke}
        with open(options.out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
        print(f"wrote {options.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
