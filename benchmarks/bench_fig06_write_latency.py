"""Figure 6: cache build (write) latency vs nested-array cardinality."""

from repro.bench.experiments import figure6_write_latency
from repro.bench.reporting import format_table


def test_fig06_write_latency(run_experiment):
    rows = run_experiment(
        figure6_write_latency, cardinalities=(2, 5, 10, 20), num_records=300
    )
    print(format_table(rows, title="Figure 6: cache write latency vs cardinality"))
    # Paper shape: the Parquet layout is cheaper to build than the flattened
    # relational columnar layout once records carry nested collections, and the
    # gap grows with the cardinality.
    assert rows[-1]["columnar_build_s"] > rows[-1]["parquet_build_s"]
    assert rows[-1]["columnar_vs_parquet"] >= rows[0]["columnar_vs_parquet"]
