#!/usr/bin/env python
"""Macro-benchmark: row-interpreted vs batched vectorized execution.

Runs the Yelp-style, TPC-H and Symantec-style workloads twice — once with the
row-at-a-time interpreter (``vectorized_execution=False``) and once with the
batched pipeline — on identically configured fresh engines, and additionally
measures six cache-hit fast paths in isolation: repeated selective range
queries against a warm relational columnar cache (the scan shape ReCache's
reuse argument rests on), repeated flat-field scans against a warm *parquet*
cache (striped-column batch slicing + NumPy masks, no row assembly), repeated
*nested-field* range scans against the same warm parquet cache (the
nested-predicate vectorizer: entry-granular masks over raw striped levels,
``np.logical_or.reduceat`` to record granularity), repeated
grouped aggregation against a warm columnar cache (the NumPy-backed group-by
versus per-row dict grouping), a repeated cache-hit equi-join (the factorized
NumPy probe versus the interpreted row-at-a-time probe), and a rows-heavy
select served with ``result_format="rows"`` versus ``"columnar"`` (the
columnar pipeline exit that skips per-row dict materialization).

Results are written to ``BENCH_batch_pipeline.json``: queries/sec per workload
and mode, the per-operator time breakdown (operator / caching / cache-scan /
lookup), and the measured batched-over-interpreted speedups.  This file is the
repo's tracked perf-trajectory baseline — CI runs the benchmark in ``--smoke``
mode (tiny datasets) and archives the JSON as a workflow artifact, so the
numbers are *measured* on every change, not asserted.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_pipeline.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro import (
    AggregateSpec,
    FieldRef,
    JoinSpec,
    Or,
    Query,
    QueryEngine,
    RangePredicate,
    ReCacheConfig,
    TableRef,
)
from repro.bench.datasets import order_lineitems_engine, symantec_engine, tpch_engine, yelp_engine
from repro.faults import runtime as faults
from repro.workloads.queries import (
    spj_tpch_workload,
    symantec_mixed_workload,
    yelp_spa_workload,
)

MODES = ("interpreted", "batched")


def _workload_config(**overrides) -> ReCacheConfig:
    return ReCacheConfig(**overrides)


def run_workload(name: str, make_engine, queries: list[Query]) -> dict:
    """Run one query sequence in both modes on identically fresh engines."""
    results: dict[str, dict] = {}
    for mode in MODES:
        vectorized = mode == "batched"
        engine: QueryEngine = make_engine(vectorized)
        started = time.perf_counter()
        operator = caching = cache_scan = lookup = 0.0
        rows = 0
        for query in queries:
            report = engine.execute(query)
            operator += report.operator_time
            caching += report.caching_time
            cache_scan += report.cache_scan_time
            lookup += report.lookup_time
            rows += report.rows_returned
        wall = time.perf_counter() - started
        stats = engine.cache_stats
        results[mode] = {
            "queries": len(queries),
            "wall_time_s": wall,
            "queries_per_sec": len(queries) / wall if wall > 0 else 0.0,
            "rows_returned": rows,
            "operator_time_s": operator,
            "caching_time_s": caching,
            "cache_scan_time_s": cache_scan,
            "lookup_time_s": lookup,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
        }
    interpreted = results["interpreted"]["wall_time_s"]
    batched = results["batched"]["wall_time_s"]
    results["speedup"] = interpreted / batched if batched > 0 else 0.0
    print(
        f"[{name}] interpreted {results['interpreted']['queries_per_sec']:.1f} q/s, "
        f"batched {results['batched']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def run_columnar_cache_hit(scale_factor: float, repeats: int) -> dict:
    """Cache-hit columnar scans with a selective numeric predicate, isolated.

    Both engines warm the same eagerly admitted relational columnar cache over
    TPC-H lineitem, then serve ``repeats`` identical selective range queries
    from it; only the hit phase is timed.  This is the path the batched
    pipeline optimizes hardest (full-column NumPy mask + column gather instead
    of per-row dictionaries), and the acceptance target: >= 3x over the
    interpreter.
    """
    query = Query.select_aggregate(
        "lineitem",
        RangePredicate("l_extendedprice", 10_000.0, 20_000.0),
        [
            AggregateSpec("sum", FieldRef("l_extendedprice")),
            AggregateSpec("avg", FieldRef("l_quantity")),
            AggregateSpec("count", FieldRef("l_orderkey")),
        ],
        label="columnar-cache-hit",
    )
    results: dict[str, dict] = {}
    for mode in MODES:
        vectorized = mode == "batched"
        config = _workload_config(
            vectorized_execution=vectorized,
            adaptive_admission=False,  # deterministic eager admission
            layout_selection=False,  # keep the cache columnar throughout
            default_flat_layout="columnar",
        )
        engine = tpch_engine(config, scale_factor=scale_factor)
        warm = engine.execute(query)
        assert warm.misses == 1, "warm-up should miss"
        started = time.perf_counter()
        for _ in range(repeats):
            report = engine.execute(query)
        wall = time.perf_counter() - started
        assert report.exact_hits == 1, "hit phase should be served from cache"
        results[mode] = {
            "repeats": repeats,
            "wall_time_s": wall,
            "queries_per_sec": repeats / wall if wall > 0 else 0.0,
            "rows_scanned_per_query": engine.recache.entries()[0].layout.flattened_row_count,
        }
    interpreted = results["interpreted"]["wall_time_s"]
    batched = results["batched"]["wall_time_s"]
    results["speedup"] = interpreted / batched if batched > 0 else 0.0
    print(
        f"[columnar-cache-hit] interpreted {results['interpreted']['queries_per_sec']:.1f} q/s, "
        f"batched {results['batched']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def run_parquet_cache_hit(orders_scale: float, repeats: int) -> dict:
    """Cache-hit parquet scans over flat (parent-level) fields, isolated.

    Both engines warm the same eagerly admitted parquet cache over the nested
    orderLineitems JSON file, then serve ``repeats`` identical queries whose
    predicate is an Or of ranges — deliberately *not* a pure conjunctive
    range, so the scan takes the general batched path: the batched pipeline
    streams `scan_batches` column slices straight out of the stripes (no
    assembly) and evaluates one NumPy mask per batch over the pre-seeded
    float64 views, while the interpreter walks per-record row dictionaries.
    Acceptance target: >= 1.5x; the smoke run gates on >= 1.0 (the batched
    scan must never regress below the interpreted path).
    """
    predicate = Or(
        [
            RangePredicate("o_totalprice", 20_000.0, 120_000.0),
            RangePredicate("o_orderdate", 9_000.0, 9_600.0),
        ]
    )
    query = Query.select_aggregate(
        "orderLineitems",
        predicate,
        [
            AggregateSpec("sum", FieldRef("o_totalprice")),
            AggregateSpec("avg", FieldRef("o_orderdate")),
            AggregateSpec("count", FieldRef("o_orderkey")),
        ],
        label="parquet-cache-hit",
    )
    results: dict[str, dict] = {}
    for mode in MODES:
        vectorized = mode == "batched"
        config = _workload_config(
            vectorized_execution=vectorized,
            adaptive_admission=False,  # deterministic eager admission
            layout_selection=False,  # keep the cache parquet throughout
            default_nested_layout="parquet",
        )
        engine = order_lineitems_engine(config, scale_factor=orders_scale)
        warm = engine.execute(query)
        assert warm.misses == 1, "warm-up should miss"
        started = time.perf_counter()
        for _ in range(repeats):
            report = engine.execute(query)
        wall = time.perf_counter() - started
        assert report.exact_hits == 1, "hit phase should be served from cache"
        entry = engine.recache.entries()[0]
        assert entry.layout.layout_name == "parquet"
        results[mode] = {
            "repeats": repeats,
            "wall_time_s": wall,
            "queries_per_sec": repeats / wall if wall > 0 else 0.0,
            "records_scanned_per_query": entry.layout.record_count,
        }
    interpreted = results["interpreted"]["wall_time_s"]
    batched = results["batched"]["wall_time_s"]
    results["speedup"] = interpreted / batched if batched > 0 else 0.0
    print(
        f"[parquet-cache-hit] interpreted {results['interpreted']['queries_per_sec']:.1f} q/s, "
        f"batched {results['batched']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def run_nested_predicate(orders_scale: float, repeats: int) -> dict:
    """Cache-hit parquet scans filtered by a *nested-field* predicate, isolated.

    The predicate is a closed conjunctive range over ``lineitems.l_quantity``
    — a leaf below the repeated level — so this measures the nested-predicate
    vectorizer directly: the batched pipeline evaluates one NumPy mask over
    the raw striped entry arrays (validity from the definition levels, no
    per-record level walk) and reduces entry hits to record hits with
    ``np.logical_or.reduceat``, while the interpreter assembles per-record
    rows from the stripes and tests them one dictionary at a time.  This is
    the exact shape that used to force the whole Symantec workload onto the
    per-row fallback.  Full-run acceptance target: >= 1.2x.
    """
    predicate = RangePredicate("lineitems.l_quantity", 10.0, 35.0)
    query = Query.select_aggregate(
        "orderLineitems",
        predicate,
        [
            AggregateSpec("sum", FieldRef("lineitems.l_extendedprice")),
            AggregateSpec("avg", FieldRef("lineitems.l_quantity")),
            AggregateSpec("count", FieldRef("o_orderkey")),
        ],
        label="nested-predicate-cache-hit",
    )
    results: dict[str, dict] = {}
    for mode in MODES:
        vectorized = mode == "batched"
        config = _workload_config(
            vectorized_execution=vectorized,
            adaptive_admission=False,  # deterministic eager admission
            layout_selection=False,  # keep the cache parquet throughout
            default_nested_layout="parquet",
        )
        engine = order_lineitems_engine(config, scale_factor=orders_scale)
        warm = engine.execute(query)
        assert warm.misses == 1, "warm-up should miss"
        started = time.perf_counter()
        for _ in range(repeats):
            report = engine.execute(query)
        wall = time.perf_counter() - started
        assert report.exact_hits == 1, "hit phase should be served from cache"
        entry = engine.recache.entries()[0]
        assert entry.layout.layout_name == "parquet"
        results[mode] = {
            "repeats": repeats,
            "wall_time_s": wall,
            "queries_per_sec": repeats / wall if wall > 0 else 0.0,
            "records_scanned_per_query": entry.layout.record_count,
        }
    interpreted = results["interpreted"]["wall_time_s"]
    batched = results["batched"]["wall_time_s"]
    results["speedup"] = interpreted / batched if batched > 0 else 0.0
    print(
        f"[nested-predicate] interpreted {results['interpreted']['queries_per_sec']:.1f} q/s, "
        f"batched {results['batched']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def run_groupby_cache_hit(scale_factor: float, repeats: int) -> dict:
    """Grouped aggregation over a warm relational columnar cache, isolated.

    The predicate is a wide closed range (nearly every row passes) so the
    measurement is dominated by the group-by itself: the batched pipeline's
    NumPy-backed factorize + per-group slice reductions versus the
    interpreter's per-row dict grouping.  Acceptance target: >= 1.5x.
    """
    query = Query(
        tables=[TableRef("lineitem", RangePredicate("l_quantity", 1.0, 50.0))],
        aggregates=[
            AggregateSpec("sum", FieldRef("l_extendedprice")),
            AggregateSpec("avg", FieldRef("l_quantity")),
            AggregateSpec("count", FieldRef("l_orderkey")),
            AggregateSpec("min", FieldRef("l_discount")),
        ],
        group_by=["l_suppkey"],
        label="groupby-cache-hit",
    )
    results: dict[str, dict] = {}
    for mode in MODES:
        vectorized = mode == "batched"
        config = _workload_config(
            vectorized_execution=vectorized,
            adaptive_admission=False,
            layout_selection=False,
            default_flat_layout="columnar",
        )
        engine = tpch_engine(config, scale_factor=scale_factor)
        warm = engine.execute(query)
        assert warm.misses == 1, "warm-up should miss"
        started = time.perf_counter()
        for _ in range(repeats):
            report = engine.execute(query)
        wall = time.perf_counter() - started
        assert report.exact_hits == 1, "hit phase should be served from cache"
        results[mode] = {
            "repeats": repeats,
            "wall_time_s": wall,
            "queries_per_sec": repeats / wall if wall > 0 else 0.0,
            "groups_per_query": report.rows_returned,
        }
    interpreted = results["interpreted"]["wall_time_s"]
    batched = results["batched"]["wall_time_s"]
    results["speedup"] = interpreted / batched if batched > 0 else 0.0
    print(
        f"[groupby-cache-hit] interpreted {results['interpreted']['queries_per_sec']:.1f} q/s, "
        f"batched {results['batched']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def run_join_cache_hit(scale_factor: float, repeats: int) -> dict:
    """Cache-hit equi-join (orders x lineitem), isolated.

    Both engines warm eagerly admitted columnar caches over *both* join
    inputs with one cold query (two misses), then serve ``repeats``
    identical join queries entirely from cache; only the hit phase is timed.
    This isolates the join operator itself: the interpreted path probes its
    hash table one row dictionary at a time, while the batched path runs the
    factorized probe — build keys grouped once, whole probe key columns
    resolved via NumPy ``searchsorted``, matches expanded as index arrays.
    The smoke run gates on >= 1.0x (the factorized join must never regress
    below the interpreted join); the full run targets >= 1.2x.
    """
    query = Query(
        tables=[
            TableRef("orders", RangePredicate("o_totalprice", 1_000.0, 400_000.0)),
            TableRef("lineitem", RangePredicate("l_quantity", 1.0, 40.0)),
        ],
        joins=[JoinSpec("orders", "o_orderkey", "lineitem", "l_orderkey")],
        aggregates=[
            # The count runs over the join key, which is non-null on every
            # matched row, so its value IS the join cardinality — recorded
            # below as the section's sanity metric.
            AggregateSpec("count", FieldRef("l_orderkey"), alias="join_rows"),
            AggregateSpec("sum", FieldRef("l_extendedprice")),
        ],
        label="join-cache-hit",
    )
    results: dict[str, dict] = {}
    for mode in MODES:
        vectorized = mode == "batched"
        config = _workload_config(
            vectorized_execution=vectorized,
            adaptive_admission=False,  # deterministic eager admission
            layout_selection=False,  # keep both caches columnar throughout
            default_flat_layout="columnar",
        )
        engine = tpch_engine(config, scale_factor=scale_factor)
        warm = engine.execute(query)
        assert warm.misses == 2, "warm-up should miss on both join inputs"
        started = time.perf_counter()
        for _ in range(repeats):
            report = engine.execute(query)
        wall = time.perf_counter() - started
        assert report.exact_hits == 2, "hit phase should be served from both caches"
        results[mode] = {
            "repeats": repeats,
            "wall_time_s": wall,
            "queries_per_sec": repeats / wall if wall > 0 else 0.0,
            "join_output_rows": warm.results[0]["join_rows"],
            "operator_time_s_per_query": report.operator_time,
        }
    interpreted = results["interpreted"]["wall_time_s"]
    batched = results["batched"]["wall_time_s"]
    results["speedup"] = interpreted / batched if batched > 0 else 0.0
    print(
        f"[join-cache-hit] interpreted {results['interpreted']['queries_per_sec']:.1f} q/s, "
        f"batched {results['batched']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def run_columnar_exit(scale_factor: float, repeats: int) -> dict:
    """Rows-heavy select served from a warm columnar cache: rows vs columnar exit.

    One batched engine, one warm cache, two timed hit phases over the same
    query — the only difference is the pipeline exit: ``result_format="rows"``
    materializes one Python dict per output row, ``"columnar"`` hands the
    pipeline's record batches to the caller as-is.  The query keeps most rows
    (a wide conjunctive range over two columns), so the measurement is
    dominated by the exit itself.  A parity assert keeps the two phases
    honest: the columnar result's ``to_rows()`` must equal the rows output.
    Full-run target: >= 1.2x.
    """
    query = Query(
        tables=[
            TableRef(
                "lineitem",
                RangePredicate("l_extendedprice", 1_000.0, 90_000.0),
            )
        ],
        label="columnar-exit",
    )
    config = _workload_config(
        vectorized_execution=True,
        adaptive_admission=False,
        layout_selection=False,
        default_flat_layout="columnar",
    )
    engine = tpch_engine(config, scale_factor=scale_factor)
    warm = engine.execute(query)
    assert warm.misses == 1, "warm-up should miss"
    results: dict[str, dict] = {}
    parity: dict[str, object] = {}
    for result_format in ("rows", "columnar"):
        started = time.perf_counter()
        for _ in range(repeats):
            report = engine.execute(query, result_format=result_format)
        wall = time.perf_counter() - started
        assert report.exact_hits == 1, "hit phase should be served from cache"
        parity[result_format] = report.results
        results[result_format] = {
            "repeats": repeats,
            "wall_time_s": wall,
            "queries_per_sec": repeats / wall if wall > 0 else 0.0,
            "rows_returned_per_query": report.rows_returned,
        }
    assert parity["columnar"].to_rows() == parity["rows"], "columnar exit lost parity"
    rows_wall = results["rows"]["wall_time_s"]
    columnar_wall = results["columnar"]["wall_time_s"]
    results["speedup"] = rows_wall / columnar_wall if columnar_wall > 0 else 0.0
    print(
        f"[columnar-exit] rows {results['rows']['queries_per_sec']:.1f} q/s, "
        f"columnar {results['columnar']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def run_fault_hook_overhead(scale_factor: float, repeats: int) -> dict:
    """Disabled fault-injection hooks must cost <= 2% of a batched cache hit.

    The injection points are built for a zero-cost disabled path: one
    ``faults.injector_for`` lookup hoisted per scan (returns ``None`` when no
    plan is installed) and one ``is not None`` branch per record/batch on the
    hot loops.  This section measures those two primitives directly, scales
    them by the hook counts an actual batched cache-hit query executes (a few
    hoisted lookups plus one guard per ~1024-record batch on ``scan_batches``;
    the vectorized range fast path guards once per mask), and asserts the sum
    stays under 2% of the measured per-query time — turning "zero overhead
    when disabled" from a design claim into a tracked number.
    """
    assert faults.active_plan() is None, "bench must run without a fault plan"
    query = Query.select_aggregate(
        "lineitem",
        RangePredicate("l_extendedprice", 10_000.0, 20_000.0),
        [AggregateSpec("sum", FieldRef("l_extendedprice"))],
        label="fault-hook-overhead",
    )
    config = _workload_config(
        vectorized_execution=True,
        adaptive_admission=False,
        layout_selection=False,
        default_flat_layout="columnar",
    )
    engine = tpch_engine(config, scale_factor=scale_factor)
    engine.execute(query)  # warm the cache
    started = time.perf_counter()
    for _ in range(repeats):
        engine.execute(query)
    per_query = (time.perf_counter() - started) / repeats
    rows = engine.recache.entries()[0].layout.flattened_row_count

    probe_iters = 50_000
    started = time.perf_counter()
    for _ in range(probe_iters):
        faults.injector_for("scan.raw", "bench")
    lookup_cost = (time.perf_counter() - started) / probe_iters
    injector = None
    started = time.perf_counter()
    for _ in range(probe_iters):
        if injector is not None:
            injector()
    guard_cost = (time.perf_counter() - started) / probe_iters

    # Hook budget of one batched cache-hit query, counted conservatively:
    # hoisted lookups on the scan + degrade-ready paths, one guard per
    # 1024-record batch plus the fast-path mask guards.
    lookups_per_query = 4
    guards_per_query = rows / 1024 + 4
    hook_cost = lookups_per_query * lookup_cost + guards_per_query * guard_cost
    overhead = hook_cost / per_query if per_query > 0 else 0.0
    results = {
        "per_query_s": per_query,
        "injector_lookup_s": lookup_cost,
        "disabled_guard_s": guard_cost,
        "hook_cost_per_query_s": hook_cost,
        "overhead_fraction": overhead,
    }
    print(
        f"[fault-hook-overhead] per-query {per_query * 1e6:.1f}us, "
        f"hooks {hook_cost * 1e9:.0f}ns ({overhead * 100:.3f}%)"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny datasets for CI: verifies both pipelines are measured, asserts nothing about ratios",
    )
    parser.add_argument("--out", default="BENCH_batch_pipeline.json", help="output JSON path")
    args = parser.parse_args()

    if args.smoke:
        yelp_records, tpch_scale, symantec_json = 200, 0.002, 150
        num_queries, hit_repeats, hit_scale = 15, 10, 0.005
        orders_scale, parquet_repeats, groupby_repeats = 0.004, 30, 15
        join_repeats, exit_repeats = 15, 20
    else:
        yelp_records, tpch_scale, symantec_json = 1500, 0.01, 1200
        num_queries, hit_repeats, hit_scale = 60, 50, 0.02
        orders_scale, parquet_repeats, groupby_repeats = 0.02, 60, 40
        join_repeats, exit_repeats = 40, 50

    workloads = {
        "yelp": run_workload(
            "yelp",
            lambda vectorized: yelp_engine(
                _workload_config(vectorized_execution=vectorized), total_records=yelp_records
            ),
            yelp_spa_workload(num_queries, seed=19),
        ),
        "tpch": run_workload(
            "tpch",
            lambda vectorized: tpch_engine(
                _workload_config(vectorized_execution=vectorized), scale_factor=tpch_scale
            ),
            spj_tpch_workload(num_queries, seed=13),
        ),
        "symantec": run_workload(
            "symantec",
            lambda vectorized: symantec_engine(
                _workload_config(vectorized_execution=vectorized), json_records=symantec_json
            ),
            symantec_mixed_workload(num_queries, seed=17),
        ),
    }
    cache_hit = run_columnar_cache_hit(hit_scale, hit_repeats)
    parquet_hit = run_parquet_cache_hit(orders_scale, parquet_repeats)
    nested_hit = run_nested_predicate(orders_scale, parquet_repeats)
    groupby_hit = run_groupby_cache_hit(hit_scale, groupby_repeats)
    join_hit = run_join_cache_hit(hit_scale, join_repeats)
    columnar_exit = run_columnar_exit(hit_scale, exit_repeats)
    fault_hooks = run_fault_hook_overhead(hit_scale, hit_repeats)

    payload = {
        "benchmark": "batch_pipeline",
        "smoke": args.smoke,
        "unix_time": time.time(),
        "python": platform.python_version(),
        "workloads": workloads,
        "columnar_cache_hit": cache_hit,
        "parquet_cache_hit": parquet_hit,
        "nested_predicate": nested_hit,
        "groupby_cache_hit": groupby_hit,
        "join_cache_hit": join_hit,
        "columnar_exit": columnar_exit,
        "fault_hook_overhead": fault_hooks,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    # The smoke run verifies that throughput was *measured* for both pipelines
    # (ratios on tiny CI datasets are mostly noise) plus three regression
    # gates: the batched parquet cache-hit scan, the nested-predicate-heavy
    # Symantec workload and the factorized cache-hit join must not fall below
    # the interpreted path.  Full runs check the acceptance targets.
    isolated = {
        "columnar_cache_hit": cache_hit,
        "parquet_cache_hit": parquet_hit,
        "nested_predicate": nested_hit,
        "groupby_cache_hit": groupby_hit,
        "join_cache_hit": join_hit,
    }
    for name, result in {**workloads, **isolated}.items():
        for mode in MODES:
            assert result[mode]["queries_per_sec"] > 0.0, f"{name}/{mode} not measured"
    for result_format in ("rows", "columnar"):
        assert columnar_exit[result_format]["queries_per_sec"] > 0.0, (
            f"columnar_exit/{result_format} not measured"
        )
    if parquet_hit["speedup"] < 1.0:
        raise SystemExit(
            f"parquet cache-hit speedup {parquet_hit['speedup']:.2f}x: batched scan "
            "regressed below the interpreted path"
        )
    if workloads["symantec"]["speedup"] < 1.0:
        raise SystemExit(
            f"symantec workload speedup {workloads['symantec']['speedup']:.2f}x: the "
            "nested-predicate vectorizer regressed — the batched pipeline must not "
            "lose to the interpreter on the nested-heavy workload"
        )
    if join_hit["speedup"] < 1.0:
        raise SystemExit(
            f"join cache-hit speedup {join_hit['speedup']:.2f}x: factorized join "
            "regressed below the interpreted join"
        )
    if fault_hooks["overhead_fraction"] > 0.02:
        raise SystemExit(
            f"disabled fault hooks cost {fault_hooks['overhead_fraction'] * 100:.2f}% "
            "of a batched cache-hit query (budget: 2%)"
        )
    if not args.smoke:
        targets = {
            "columnar_cache_hit": (cache_hit, 3.0),
            "parquet_cache_hit": (parquet_hit, 1.5),
            "nested_predicate": (nested_hit, 1.2),
            "groupby_cache_hit": (groupby_hit, 1.5),
            "join_cache_hit": (join_hit, 1.2),
            "columnar_exit": (columnar_exit, 1.2),
            "symantec": (workloads["symantec"], 1.2),
        }
        for name, (result, floor) in targets.items():
            if result["speedup"] < floor:
                raise SystemExit(
                    f"{name} speedup {result['speedup']:.2f}x below the {floor}x target"
                )


if __name__ == "__main__":
    main()
