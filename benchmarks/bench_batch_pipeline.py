#!/usr/bin/env python
"""Macro-benchmark: row-interpreted vs batched vectorized execution.

Runs the Yelp-style, TPC-H and Symantec-style workloads twice — once with the
row-at-a-time interpreter (``vectorized_execution=False``) and once with the
batched pipeline — on identically configured fresh engines, and additionally
measures the cache-hit fast path in isolation (repeated selective range
queries against a warm relational columnar cache, the scan shape ReCache's
reuse argument rests on).

Results are written to ``BENCH_batch_pipeline.json``: queries/sec per workload
and mode, the per-operator time breakdown (operator / caching / cache-scan /
lookup), and the measured batched-over-interpreted speedups.  This file is the
repo's tracked perf-trajectory baseline — CI runs the benchmark in ``--smoke``
mode (tiny datasets) and archives the JSON as a workflow artifact, so the
numbers are *measured* on every change, not asserted.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_pipeline.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro import AggregateSpec, FieldRef, Query, QueryEngine, RangePredicate, ReCacheConfig
from repro.bench.datasets import symantec_engine, tpch_engine, yelp_engine
from repro.workloads.queries import (
    spj_tpch_workload,
    symantec_mixed_workload,
    yelp_spa_workload,
)

MODES = ("interpreted", "batched")


def _workload_config(**overrides) -> ReCacheConfig:
    return ReCacheConfig(**overrides)


def run_workload(name: str, make_engine, queries: list[Query]) -> dict:
    """Run one query sequence in both modes on identically fresh engines."""
    results: dict[str, dict] = {}
    for mode in MODES:
        vectorized = mode == "batched"
        engine: QueryEngine = make_engine(vectorized)
        started = time.perf_counter()
        operator = caching = cache_scan = lookup = 0.0
        rows = 0
        for query in queries:
            report = engine.execute(query)
            operator += report.operator_time
            caching += report.caching_time
            cache_scan += report.cache_scan_time
            lookup += report.lookup_time
            rows += report.rows_returned
        wall = time.perf_counter() - started
        stats = engine.cache_stats
        results[mode] = {
            "queries": len(queries),
            "wall_time_s": wall,
            "queries_per_sec": len(queries) / wall if wall > 0 else 0.0,
            "rows_returned": rows,
            "operator_time_s": operator,
            "caching_time_s": caching,
            "cache_scan_time_s": cache_scan,
            "lookup_time_s": lookup,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
        }
    interpreted = results["interpreted"]["wall_time_s"]
    batched = results["batched"]["wall_time_s"]
    results["speedup"] = interpreted / batched if batched > 0 else 0.0
    print(
        f"[{name}] interpreted {results['interpreted']['queries_per_sec']:.1f} q/s, "
        f"batched {results['batched']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def run_columnar_cache_hit(scale_factor: float, repeats: int) -> dict:
    """Cache-hit columnar scans with a selective numeric predicate, isolated.

    Both engines warm the same eagerly admitted relational columnar cache over
    TPC-H lineitem, then serve ``repeats`` identical selective range queries
    from it; only the hit phase is timed.  This is the path the batched
    pipeline optimizes hardest (full-column NumPy mask + column gather instead
    of per-row dictionaries), and the acceptance target: >= 3x over the
    interpreter.
    """
    query = Query.select_aggregate(
        "lineitem",
        RangePredicate("l_extendedprice", 10_000.0, 20_000.0),
        [
            AggregateSpec("sum", FieldRef("l_extendedprice")),
            AggregateSpec("avg", FieldRef("l_quantity")),
            AggregateSpec("count", FieldRef("l_orderkey")),
        ],
        label="columnar-cache-hit",
    )
    results: dict[str, dict] = {}
    for mode in MODES:
        vectorized = mode == "batched"
        config = _workload_config(
            vectorized_execution=vectorized,
            adaptive_admission=False,  # deterministic eager admission
            layout_selection=False,  # keep the cache columnar throughout
            default_flat_layout="columnar",
        )
        engine = tpch_engine(config, scale_factor=scale_factor)
        warm = engine.execute(query)
        assert warm.misses == 1, "warm-up should miss"
        started = time.perf_counter()
        for _ in range(repeats):
            report = engine.execute(query)
        wall = time.perf_counter() - started
        assert report.exact_hits == 1, "hit phase should be served from cache"
        results[mode] = {
            "repeats": repeats,
            "wall_time_s": wall,
            "queries_per_sec": repeats / wall if wall > 0 else 0.0,
            "rows_scanned_per_query": engine.recache.entries()[0].layout.flattened_row_count,
        }
    interpreted = results["interpreted"]["wall_time_s"]
    batched = results["batched"]["wall_time_s"]
    results["speedup"] = interpreted / batched if batched > 0 else 0.0
    print(
        f"[columnar-cache-hit] interpreted {results['interpreted']['queries_per_sec']:.1f} q/s, "
        f"batched {results['batched']['queries_per_sec']:.1f} q/s "
        f"(speedup {results['speedup']:.2f}x)"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny datasets for CI: verifies both pipelines are measured, asserts nothing about ratios",
    )
    parser.add_argument("--out", default="BENCH_batch_pipeline.json", help="output JSON path")
    args = parser.parse_args()

    if args.smoke:
        yelp_records, tpch_scale, symantec_json = 200, 0.002, 150
        num_queries, hit_repeats, hit_scale = 15, 10, 0.005
    else:
        yelp_records, tpch_scale, symantec_json = 1500, 0.01, 1200
        num_queries, hit_repeats, hit_scale = 60, 50, 0.02

    workloads = {
        "yelp": run_workload(
            "yelp",
            lambda vectorized: yelp_engine(
                _workload_config(vectorized_execution=vectorized), total_records=yelp_records
            ),
            yelp_spa_workload(num_queries, seed=19),
        ),
        "tpch": run_workload(
            "tpch",
            lambda vectorized: tpch_engine(
                _workload_config(vectorized_execution=vectorized), scale_factor=tpch_scale
            ),
            spj_tpch_workload(num_queries, seed=13),
        ),
        "symantec": run_workload(
            "symantec",
            lambda vectorized: symantec_engine(
                _workload_config(vectorized_execution=vectorized), json_records=symantec_json
            ),
            symantec_mixed_workload(num_queries, seed=17),
        ),
    }
    cache_hit = run_columnar_cache_hit(hit_scale, hit_repeats)

    payload = {
        "benchmark": "batch_pipeline",
        "smoke": args.smoke,
        "unix_time": time.time(),
        "python": platform.python_version(),
        "workloads": workloads,
        "columnar_cache_hit": cache_hit,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    # The smoke run only verifies that throughput was *measured* for both
    # pipelines; ratios on tiny CI datasets are noise, so nothing is asserted
    # about them.  Full runs check the acceptance target.
    for name, result in {**workloads, "columnar_cache_hit": cache_hit}.items():
        for mode in MODES:
            assert result[mode]["queries_per_sec"] > 0.0, f"{name}/{mode} not measured"
    if not args.smoke and cache_hit["speedup"] < 3.0:
        raise SystemExit(
            f"columnar cache-hit speedup {cache_hit['speedup']:.2f}x below the 3x target"
        )


if __name__ == "__main__":
    main()
