"""Figure 7: CDF of the layout cost model's prediction error."""

from repro.bench.experiments import figure7_cost_model_error


def test_fig07_cost_model_error(run_experiment):
    result = run_experiment(figure7_cost_model_error, num_orders=400, num_queries=60)
    print(
        "cost-model error: "
        f"median={result['median_error']:.1f}% "
        f"within 10%={result['fraction_within_10pct']:.0%} "
        f"within 30%={result['fraction_within_30pct']:.0%} "
        f"within 50%={result['fraction_within_50pct']:.0%}"
    )
    # The paper reports 90% of predictions within 10% of the measured cost; our
    # D/C split is estimated via calibration rather than measured inside
    # generated code, so the reproduced accuracy is looser (see EXPERIMENTS.md)
    # but the errors must still be centred: at least half the predictions land
    # within 50% of the measured cost.
    assert result["fraction_within_50pct"] >= 0.5
    assert len(result["errors"]) == 120
