"""Ablation benches for the design choices called out in DESIGN.md."""

from repro.bench.experiments import (
    ablation_admission_extrapolation,
    ablation_benefit_recompute,
    ablation_eviction_order,
    ablation_subsumption_index,
    ablation_timing_sampling,
)


def test_ablation_benefit_recompute(run_experiment):
    result = run_experiment(
        ablation_benefit_recompute, cache_size=400_000, num_queries=15, scale_factor=0.002
    )
    print(
        f"recompute={result['recompute_total_s']:.2f}s frozen={result['frozen_total_s']:.2f}s "
        f"(frozen slowdown {result['frozen_slowdown_pct']:+.1f}%)"
    )
    assert result["recompute_total_s"] > 0 and result["frozen_total_s"] > 0


def test_ablation_eviction_order(run_experiment):
    result = run_experiment(
        ablation_eviction_order, cache_size=400_000, num_queries=15, scale_factor=0.002
    )
    print(
        f"size-aware: {result['size_aware_total_s']:.2f}s / {result['size_aware_evictions']} evictions; "
        f"plain: {result['plain_total_s']:.2f}s / {result['plain_evictions']} evictions"
    )
    # The size-aware heuristic exists to evict fewer items for the same space.
    assert result["size_aware_evictions"] <= result["plain_evictions"]


def test_ablation_timing_sampling(run_experiment):
    result = run_experiment(ablation_timing_sampling, num_queries=12, scale_factor=0.002)
    totals = result["totals"]
    print(
        f"sampled(1%)={totals['sampled_1pct']:.2f}s per-record={totals['per_record']:.2f}s "
        f"(per-record overhead {result['per_record_overhead_pct']:+.1f}%)"
    )
    assert totals["sampled_1pct"] > 0


def test_ablation_admission_extrapolation(run_experiment):
    result = run_experiment(
        ablation_admission_extrapolation, num_queries=15, scale_factor=0.002
    )
    for name, stats in result.items():
        print(
            f"{name}: mean_overhead={stats['mean_overhead_pct']:.1f}% "
            f"lazy={stats['lazy_admissions']} eager={stats['eager_admissions']} "
            f"total={stats['total_time_s']:.2f}s"
        )
    assert set(result) == {"extrapolated", "naive"}


def test_ablation_subsumption_index(run_experiment):
    result = run_experiment(ablation_subsumption_index, num_predicates=300, num_lookups=150)
    for name, stats in result.items():
        print(
            f"{name}: lookups={stats['lookup_total_s'] * 1e3:.2f}ms "
            f"inserts={stats['insert_total_s'] * 1e3:.2f}ms hits={stats['hits']}"
        )
    # Both strategies must find exactly the same subsuming caches.
    assert result["rtree"]["hits"] == result["linear"]["hits"]
