"""Figure 12: per-query caching overhead of lazy / eager / ReCache admission."""

from repro.bench.experiments import (
    figure12a_admission_overhead_cdf,
    figure12b_admission_threshold_sweep,
)
from repro.bench.reporting import format_table


def test_fig12a_admission_overhead_cdf(run_experiment):
    result = run_experiment(
        figure12a_admission_overhead_cdf, num_queries=25, scale_factor=0.002
    )
    means = result["mean_overhead_pct"]
    print(
        f"mean caching overhead: lazy={means['lazy']:.1f}% eager={means['eager']:.1f}% "
        f"recache={means['recache']:.1f}% "
        f"(recache vs eager reduction {result['recache_vs_eager_reduction_pct']:.1f}%)"
    )
    # Paper shape: lazy caching is by far the cheapest per query and eager the
    # most expensive; ReCache sits in between (59% below eager in the paper —
    # see EXPERIMENTS.md for why the gap is smaller on this substrate).
    assert means["lazy"] < means["recache"]
    assert means["lazy"] < means["eager"]
    assert means["recache"] <= means["eager"] * 1.05


def test_fig12b_threshold_sweep(run_experiment):
    result = run_experiment(
        figure12b_admission_threshold_sweep,
        thresholds=(0.01, 0.10, 0.50),
        num_queries=20,
        scale_factor=0.002,
    )
    print(format_table(result["rows"], title="Figure 12b: switching-threshold sensitivity"))
    by_config = {row["config"]: row for row in result["rows"]}
    # A very permissive threshold (50%) must not have *lower* overhead than the
    # strict 1% threshold.
    assert (
        by_config["recache(T=50%)"]["mean_overhead_pct"]
        >= by_config["recache(T=1%)"]["mean_overhead_pct"] - 2.0
    )
