"""Figure 9: automatic layout selection vs the two static layouts."""

import pytest

from repro.bench.experiments import figure9_auto_layout


@pytest.mark.parametrize("pattern", ["halves", "alternating", "random"])
def test_fig09_auto_layout(run_experiment, pattern):
    result = run_experiment(
        figure9_auto_layout, pattern=pattern, num_queries=180, num_orders=600
    )
    totals = result["totals"]
    print(
        f"pattern={pattern}: parquet={totals['parquet']:.3f}s columnar={totals['columnar']:.3f}s "
        f"recache={totals['recache']:.3f}s optimal={result['optimal_total']:.3f}s "
        f"switches={result['recache_layout_switches']} "
        f"closer-than-parquet={result['closer_than_parquet_pct']:.0f}% "
        f"closer-than-columnar={result['closer_than_columnar_pct']:.0f}%"
    )
    # ReCache must never collapse to the *worse* static layout: it stays within
    # a modest margin of the better static choice on every pattern, and on the
    # two-phase pattern (Figure 9a) it actually has to adapt (switch layouts).
    best_static = min(totals["parquet"], totals["columnar"])
    worst_static = max(totals["parquet"], totals["columnar"])
    margin = 1.35 if pattern == "halves" else 1.6
    assert totals["recache"] <= max(worst_static, best_static * margin)
    assert totals["recache"] <= best_static * margin
    if pattern == "halves":
        assert result["recache_layout_switches"] >= 1
