"""Figure 10: cumulative execution time on the Symantec-style JSON data."""

import pytest

from repro.bench.experiments import figure10_symantec_cumulative


@pytest.mark.parametrize("nested_fraction", [0.1, 0.9], ids=["fig10a_10pct", "fig10b_90pct"])
def test_fig10_symantec_cumulative(run_experiment, nested_fraction):
    result = run_experiment(
        figure10_symantec_cumulative,
        nested_fraction=nested_fraction,
        num_queries=80,
        json_records=800,
    )
    totals = result["totals"]
    print(
        f"nested={nested_fraction:.0%}: columnar={totals['columnar']:.2f}s "
        f"parquet={totals['parquet']:.2f}s recache={totals['recache']:.2f}s "
        f"(recache vs columnar {result['recache_vs_columnar_reduction_pct']:+.1f}%, "
        f"vs parquet {result['recache_vs_parquet_reduction_pct']:+.1f}%)"
    )
    # Paper shape: ReCache tracks whichever static layout fits the workload.
    # At bench scale most cached items see only a handful of reuses, so the
    # selector's gains are partly offset by monitoring/switching overhead; the
    # bound below still rules out collapsing onto the wrong layout (which costs
    # 1.5-4x in the paper's Figure 15).
    assert totals["recache"] <= max(totals["parquet"], totals["columnar"]) * 1.25
    assert len(result["series"]["recache"]) == 80
