#!/usr/bin/env python
"""Macro-benchmark: async batched submission vs per-request serving.

Two measurements of the serving tier added on top of the reproduction:

1. **Borrowing smoke** — drives the multi-client workload runner against a
   cold ``shard_count=4`` cache whose hottest query materializes an item
   larger than one shard's proportional share of ``cache_size_limit``.  Under
   the old static per-shard budget split that item could never be admitted;
   the shared-budget protocol must admit it by borrowing global headroom
   while keeping ``total_bytes <= cache_size_limit``.  Asserted in every
   mode, including ``--smoke`` (it is deterministic).

2. **Batched throughput** — the same zipfian multi-client streams served
   twice: per-request ``submit()`` (every draw its own pool task) vs
   ``submit_batch()`` (duplicates coalesced, overlapping queries grouped onto
   one worker).  The acceptance target for full runs: batched >= 1.5x the
   per-request queries/second.

Results are written to ``BENCH_async_submission.json`` — a tracked
perf-trajectory point like ``BENCH_batch_pipeline.json``; CI runs ``--smoke``
and archives the JSON so the numbers are *measured* on every change.

Usage::

    PYTHONPATH=src python benchmarks/bench_async_submission.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.bench.concurrency_experiments import (
    async_submission_experiment,
    borrowing_admission_experiment,
)

SPEEDUP_TARGET = 1.5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "tiny datasets for CI: still asserts the borrowing invariants "
            "(deterministic), but not the throughput ratio (noise)"
        ),
    )
    parser.add_argument("--out", default="BENCH_async_submission.json", help="output JSON path")
    args = parser.parse_args()

    if args.smoke:
        borrowing = borrowing_admission_experiment(rows=800, queries_per_client=6)
        throughput = async_submission_experiment(
            rows=800, clients=4, pool_size=12, queries_per_client=16, batch_size=8
        )
    else:
        borrowing = borrowing_admission_experiment()
        throughput = async_submission_experiment()

    payload = {
        "benchmark": "async_submission",
        "smoke": args.smoke,
        "unix_time": time.time(),
        "python": platform.python_version(),
        "borrowing": borrowing,
        "throughput": throughput,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    print(
        f"[borrowing] item {borrowing['item_bytes']}B vs share {borrowing['shard_share']}B "
        f"(limit {borrowing['global_limit']}B, {borrowing['shard_count']} shards): "
        f"admitted={borrowing['admitted']}, "
        f"borrowed_admissions={borrowing['borrowed_admissions']}, "
        f"budget_ok={borrowing['budget_ok']}"
    )
    print(
        f"[throughput] per-request {throughput['per_request']['queries_per_second']:.1f} q/s, "
        f"batched {throughput['batched']['queries_per_second']:.1f} q/s "
        f"(speedup {throughput['batched_speedup']:.2f}x, "
        f"coalesced {throughput['batched']['coalesced']}/{throughput['batched']['queries']})"
    )

    # The borrowing scenario is deterministic: assert it in every mode.
    assert borrowing["item_exceeds_share"], "scenario must use an over-share item"
    assert borrowing["admitted"], "over-share item was not admitted via borrowing"
    assert borrowing["borrowed_admissions"] >= 1, "no borrowed admission recorded"
    assert borrowing["budget_ok"], "global byte budget violated"

    for mode in ("per_request", "batched"):
        assert throughput[mode]["queries_per_second"] > 0.0, f"{mode} not measured"
    if not args.smoke and throughput["batched_speedup"] < SPEEDUP_TARGET:
        raise SystemExit(
            f"batched speedup {throughput['batched_speedup']:.2f}x below the "
            f"{SPEEDUP_TARGET}x target"
        )


if __name__ == "__main__":
    main()
