"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark runs its experiment driver exactly once (the drivers measure
and compare configurations internally); ``pytest-benchmark`` records the
end-to-end experiment runtime while the benchmark body asserts the qualitative
*shape* the paper reports and prints the reproduced rows/series.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment driver once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(lambda: fn(*args, **kwargs), rounds=1, iterations=1)

    return runner
