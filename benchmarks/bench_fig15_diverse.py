"""Figure 15: the four cache configurations under a limited memory budget."""

import pytest

from repro.bench.experiments import figure15a_symantec_diverse, figure15b_yelp_diverse


@pytest.mark.parametrize(
    "driver,kwargs",
    [
        (figure15a_symantec_diverse, dict(num_queries=80, json_records=800, csv_records=2500, cache_size=400_000)),
        (figure15b_yelp_diverse, dict(num_queries=80, total_records=900, cache_size=500_000)),
    ],
    ids=["fig15a_symantec", "fig15b_yelp"],
)
def test_fig15_diverse_workloads(run_experiment, driver, kwargs):
    result = run_experiment(driver, **kwargs)
    totals = result["totals"]
    print(
        "totals: "
        + " ".join(f"{name}={value:.2f}s" for name, value in totals.items())
    )
    print(
        f"recache vs parquet/greedy: {result['recache_vs_parquet_reduction_pct']:+.1f}%  "
        f"vs columnar/greedy: {result['recache_vs_columnar_greedy_reduction_pct']:+.1f}%  "
        f"vs columnar/LRU: {result['recache_vs_columnar_lru_reduction_pct']:+.1f}%"
    )
    # Paper shape: full ReCache (automatic layout + cost-based eviction) stays
    # competitive with every other configuration (in the paper it wins by
    # 19-75%; at bench scale the margins compress, so the bound only rules out
    # ReCache being left far behind).
    assert totals["recache"] <= totals["columnar_lru"] * 1.30
    best_other = min(totals["columnar_greedy"], totals["parquet_greedy"], totals["columnar_lru"])
    assert totals["recache"] <= best_other * 1.35
