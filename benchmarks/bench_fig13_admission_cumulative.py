"""Figure 13: cumulative workload time for no-cache / lazy / eager / ReCache."""

from repro.bench.experiments import figure13_admission_cumulative


def test_fig13_admission_cumulative(run_experiment):
    result = run_experiment(
        figure13_admission_cumulative, num_queries=30, scale_factor=0.002
    )
    totals = result["totals"]
    print(
        "cumulative totals: "
        + " ".join(f"{name}={value:.2f}s" for name, value in totals.items())
    )
    print(
        f"recache vs lazy: {result['recache_vs_lazy_reduction_pct']:+.1f}%  "
        f"recache vs eager gap: {result['recache_vs_eager_gap_pct']:+.1f}%"
    )
    # Shape preserved on this substrate: lazy caching stays close to the
    # no-caching baseline while the eager strategies pay the materialization
    # cost up front; ReCache stays cheaper than always-eager caching.  (In the
    # paper the eager strategies additionally overtake the no-caching baseline;
    # see EXPERIMENTS.md for why that crossover needs more reuse than the
    # bench-scale workload provides.)
    assert totals["lazy"] <= totals["eager"]
    assert totals["recache"] <= totals["eager"] * 1.05
    assert len(result["series"]["none"]) == 30
