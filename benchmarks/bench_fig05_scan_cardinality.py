"""Figure 5: full-scan time vs nested-array cardinality (Parquet vs columnar)."""

from repro.bench.experiments import figure5_scan_vs_cardinality
from repro.bench.reporting import format_table


def test_fig05_scan_vs_cardinality(run_experiment):
    rows = run_experiment(
        figure5_scan_vs_cardinality, cardinalities=(0, 2, 5, 10, 20), num_records=300
    )
    print(format_table(rows, title="Figure 5: scan time vs cardinality"))
    # Paper shape: Parquet stays slower than the relational columnar layout for
    # full scans even as the nested collection grows (about 3x in the paper).
    for row in rows:
        if row["cardinality"] >= 2:
            assert row["parquet_scan_s"] > row["columnar_scan_s"]
