"""Figure 14: eviction-policy comparison across cache sizes."""

from repro.bench.experiments import FIGURE14_POLICIES, figure14_eviction_policies


def test_fig14_eviction_policies(run_experiment):
    result = run_experiment(
        figure14_eviction_policies,
        cache_sizes=(250_000, 1_000_000),
        num_queries=18,
        scale_factor=0.002,
    )
    for row in result["rows"]:
        print(
            f"cache={row['cache_size']:>9d}B  "
            + "  ".join(f"{policy}={row[policy]:.2f}s" for policy in FIGURE14_POLICIES)
            + f"  recache-vs-lru={row['recache_vs_lru_reduction_pct']:+.1f}%"
        )
    print(f"unlimited-cache baseline: {result['unlimited_total']:.2f}s")
    # Paper shape: the cost-aware ReCache policy does not lose to LRU, and no
    # limited-cache configuration beats the unlimited-cache baseline by more
    # than measurement noise.
    for row in result["rows"]:
        assert row["recache"] <= row["lru"] * 1.10
        assert row["recache"] >= result["unlimited_total"] * 0.8
