"""Concurrent serving throughput: queries/sec vs worker threads and shards.

Not a paper figure — this measures the serving layer added on top of the
reproduction: an :class:`~repro.engine.server.EngineServer` thread pool in
front of one shared :class:`~repro.core.sharded_cache.ShardedReCache`, driven
by closed-loop zipfian clients.  Per-request service includes a simulated
response-delivery wait (see ``io_wait_ms`` in the experiment driver) that the
worker pool overlaps; with it at zero the bench reduces to pure
lock-contention measurement.
"""

import os

from repro.bench.concurrency_experiments import (
    concurrent_throughput_experiment,
    worker_scaling_experiment,
)
from repro.bench.reporting import format_table


def test_throughput_scales_with_worker_threads(run_experiment):
    result = run_experiment(
        concurrent_throughput_experiment,
        thread_counts=(1, 2, 4),
        shard_counts=(4,),
    )
    print(format_table(result["thread_rows"], title="Throughput vs worker threads"))
    speedups = result["speedup_vs_single_thread"]
    print(
        "speedup vs 1 thread: "
        + ", ".join(f"{t} threads = {s:.2f}x" for t, s in sorted(speedups.items()))
    )
    # The workload must actually be cache-hit-heavy for the scaling claim to
    # mean anything.
    for row in result["thread_rows"]:
        assert row["hit_rate"] >= 0.9, row
    # Four workers overlap the per-request delivery waits of four requests;
    # required scaling is >= 2x over a single worker.
    assert speedups[4] >= 2.0, speedups
    assert speedups[2] >= 1.3, speedups


def test_process_worker_scaling(run_experiment):
    """Smoke gate for the GIL-escape path: processes vs threads, io_wait=0.

    The full acceptance run (``benchmarks/bench_worker_scaling.py`` CLI)
    measures the 1..2*cores sweep; this CI smoke keeps the sweep small and
    only enforces the >= 1.0x floor where parallelism exists to pay for the
    IPC overhead — on single-core runners the ratio is recorded, not gated.
    """
    result = run_experiment(
        worker_scaling_experiment,
        worker_counts=(1, 2),
        clients=4,
        queries_per_client=15,
    )
    print(format_table(result["scaling_rows"], title="Throughput: threads vs processes"))
    ratios = result["ratio_by_workers"]
    print(
        f"processes/threads ratio (cores={result['cores']}): "
        + ", ".join(f"{w} workers = {r:.2f}x" for w, r in sorted(ratios.items()))
    )
    for row in result["scaling_rows"]:
        assert row["hit_rate"] >= 0.9, row
        assert row["queries_per_second"] > 0.0, row
        if row["mode"] == "processes":
            # The process rows must actually exercise worker children.
            assert row["offloaded"] > 0, row
    if (os.cpu_count() or 1) >= 2:
        assert max(ratios.values()) >= 1.0, ratios


def test_throughput_across_shard_counts(run_experiment):
    result = run_experiment(
        concurrent_throughput_experiment,
        thread_counts=(4,),
        shard_counts=(1, 4, 8),
    )
    print(format_table(result["shard_rows"], title="Throughput vs shard count (4 workers)"))
    for row in result["shard_rows"]:
        # Sharding must never lose entries or corrupt the byte accounting,
        # and every configuration must sustain the hit-heavy workload.
        assert row["budget_ok"], row
        assert row["hit_rate"] >= 0.9, row
        assert row["queries_per_second"] > 0.0, row
