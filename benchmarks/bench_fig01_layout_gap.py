"""Figure 1: Parquet vs relational columnar caches over a shifting workload."""

from repro.bench.experiments import figure1_layout_gap


def test_fig01_layout_gap(run_experiment):
    result = run_experiment(figure1_layout_gap, num_orders=400, num_queries=80)
    half = result["phase_boundary"]
    print(
        f"phase 1 (all attributes): parquet={result['phase1_parquet_total']:.4f}s "
        f"columnar={result['phase1_columnar_total']:.4f}s"
    )
    print(
        f"phase 2 (non-nested only): parquet={result['phase2_parquet_total']:.4f}s "
        f"columnar={result['phase2_columnar_total']:.4f}s"
    )
    # Paper shape: the columnar layout wins while nested attributes are
    # accessed; Parquet wins once only non-nested attributes are touched.
    assert result["phase1_columnar_total"] < result["phase1_parquet_total"]
    assert result["phase2_parquet_total"] < result["phase2_columnar_total"]
    assert half == 40
