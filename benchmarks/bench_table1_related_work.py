"""Table 1: qualitative comparison with related work."""

from repro.bench.experiments import TABLE1_REQUIREMENTS, table1_related_work
from repro.bench.reporting import format_table


def test_table1_related_work(run_experiment):
    rows = run_experiment(table1_related_work)
    print(format_table(rows, title="Table 1: comparison with related work"))
    assert len(rows) == 6
    # Only ReCache ticks all three requirement columns.
    full_rows = [r for r in rows if all(r[req] for req in TABLE1_REQUIREMENTS)]
    assert [r["research_area"] for r in full_rows] == ["Reactive Cache (ReCache)"]
